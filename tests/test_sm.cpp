#include <gtest/gtest.h>

#include "gpu/sm.hpp"
#include "test_util.hpp"
#include "workloads/synthetic_workload.hpp"

using namespace morpheus;
using namespace morpheus::test;

namespace {

WorkloadParams
tiny_params(std::uint32_t alu, std::uint32_t warps, std::uint64_t steps)
{
    WorkloadParams p;
    p.name = "sm-test";
    p.alu_per_mem = alu;
    p.lines_per_mem = 1;
    p.shared_ws_bytes = 64 * 1024;
    p.warps_per_sm = warps;
    p.total_mem_instrs = steps;
    return p;
}

} // namespace

TEST(Sm, RunsWorkloadToCompletion)
{
    TestFabric fabric;
    FakeRouter router(fabric, 100);
    SyntheticWorkload wl(tiny_params(4, 4, 200));
    wl.configure(1);
    Sm sm(0, fabric.ctx(), &router, &wl);
    sm.start();
    fabric.eq.run();
    EXPECT_TRUE(sm.done());
    EXPECT_GT(sm.instructions(), 200u);  // ALU + memory instructions
    EXPECT_EQ(sm.mem_instructions(), 200u);
}

TEST(Sm, IssueWidthBoundsIpc)
{
    TestFabric fabric;
    fabric.cfg.issue_width = 4;
    FakeRouter router(fabric, 10);
    // Pure-ALU heavy: IPC should approach (but never exceed) issue width.
    SyntheticWorkload wl(tiny_params(64, 8, 400));
    wl.configure(1);
    Sm sm(0, fabric.ctx(), &router, &wl);
    sm.start();
    fabric.eq.run();
    const double ipc =
        static_cast<double>(sm.instructions()) / static_cast<double>(fabric.eq.now());
    EXPECT_LE(ipc, 4.0 + 1e-9);
    EXPECT_GT(ipc, 3.0);
}

TEST(Sm, MemoryLatencyStallsLowOccupancy)
{
    // One warp, no ALU work: execution time ~ steps x memory latency when
    // credits are exhausted.
    TestFabric fabric;
    fabric.cfg.warp_mem_credits = 1;
    FakeRouter router(fabric, 500);
    WorkloadParams p = tiny_params(0, 1, 50);
    p.shared_ws_bytes = 32 << 20;  // far beyond L1: every access misses
    SyntheticWorkload wl(p);
    wl.configure(1);
    Sm sm(0, fabric.ctx(), &router, &wl);
    sm.start();
    fabric.eq.run();
    EXPECT_GE(fabric.eq.now(), 50u * 500u * 9 / 10);
}

TEST(Sm, MemCreditsOverlapLatency)
{
    // Same workload with 4 credits should be ~4x faster.
    auto run_with_credits = [](std::uint32_t credits) {
        TestFabric fabric;
        fabric.cfg.warp_mem_credits = credits;
        FakeRouter router(fabric, 500);
        SyntheticWorkload wl(tiny_params(0, 1, 64));
        wl.configure(1);
        Sm sm(0, fabric.ctx(), &router, &wl);
        sm.start();
        fabric.eq.run();
        return fabric.eq.now();
    };
    const Cycle t1 = run_with_credits(1);
    const Cycle t4 = run_with_credits(4);
    EXPECT_LT(static_cast<double>(t4), static_cast<double>(t1) * 0.4);
}

TEST(Sm, MoreWarpsHideLatency)
{
    auto run_with_warps = [](std::uint32_t warps) {
        TestFabric fabric;
        FakeRouter router(fabric, 400);
        SyntheticWorkload wl(tiny_params(2, warps, 256));
        wl.configure(1);
        Sm sm(0, fabric.ctx(), &router, &wl);
        sm.start();
        fabric.eq.run();
        return fabric.eq.now();
    };
    EXPECT_LT(run_with_warps(16), run_with_warps(2));
}

TEST(Sm, NonBlockingWritesDoNotStall)
{
    TestFabric fabric;
    fabric.cfg.blocking_writes = false;
    FakeRouter router(fabric, 800);
    WorkloadParams p = tiny_params(0, 1, 64);
    p.write_frac = 1.0;  // all stores
    SyntheticWorkload wl(p);
    wl.configure(1);
    Sm sm(0, fabric.ctx(), &router, &wl);
    sm.start();
    fabric.eq.run();
    // Fire-and-forget stores: far faster than 64 x 800 cycles.
    EXPECT_LT(fabric.eq.now(), 64u * 800u / 4);
}
