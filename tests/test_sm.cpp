#include <gtest/gtest.h>

#include "gpu/sm.hpp"
#include "test_util.hpp"
#include "workloads/synthetic_workload.hpp"

using namespace morpheus;
using namespace morpheus::test;

namespace {

WorkloadParams
tiny_params(std::uint32_t alu, std::uint32_t warps, std::uint64_t steps)
{
    WorkloadParams p;
    p.name = "sm-test";
    p.alu_per_mem = alu;
    p.lines_per_mem = 1;
    p.shared_ws_bytes = 64 * 1024;
    p.warps_per_sm = warps;
    p.total_mem_instrs = steps;
    return p;
}

} // namespace

TEST(Sm, RunsWorkloadToCompletion)
{
    TestFabric fabric;
    FakeRouter router(fabric, 100);
    SyntheticWorkload wl(tiny_params(4, 4, 200));
    wl.configure(1);
    Sm sm(0, fabric.ctx(), &router, &wl);
    sm.start();
    fabric.eq.run();
    EXPECT_TRUE(sm.done());
    EXPECT_GT(sm.instructions(), 200u);  // ALU + memory instructions
    EXPECT_EQ(sm.mem_instructions(), 200u);
}

TEST(Sm, IssueWidthBoundsIpc)
{
    TestFabric fabric;
    fabric.cfg.issue_width = 4;
    FakeRouter router(fabric, 10);
    // Pure-ALU heavy: IPC should approach (but never exceed) issue width.
    SyntheticWorkload wl(tiny_params(64, 8, 400));
    wl.configure(1);
    Sm sm(0, fabric.ctx(), &router, &wl);
    sm.start();
    fabric.eq.run();
    const double ipc =
        static_cast<double>(sm.instructions()) / static_cast<double>(fabric.eq.now());
    EXPECT_LE(ipc, 4.0 + 1e-9);
    EXPECT_GT(ipc, 3.0);
}

TEST(Sm, MemoryLatencyStallsLowOccupancy)
{
    // One warp, no ALU work: execution time ~ steps x memory latency when
    // credits are exhausted.
    TestFabric fabric;
    fabric.cfg.warp_mem_credits = 1;
    FakeRouter router(fabric, 500);
    WorkloadParams p = tiny_params(0, 1, 50);
    p.shared_ws_bytes = 32 << 20;  // far beyond L1: every access misses
    SyntheticWorkload wl(p);
    wl.configure(1);
    Sm sm(0, fabric.ctx(), &router, &wl);
    sm.start();
    fabric.eq.run();
    EXPECT_GE(fabric.eq.now(), 50u * 500u * 9 / 10);
}

TEST(Sm, MemCreditsOverlapLatency)
{
    // Same workload with 4 credits should be ~4x faster.
    auto run_with_credits = [](std::uint32_t credits) {
        TestFabric fabric;
        fabric.cfg.warp_mem_credits = credits;
        FakeRouter router(fabric, 500);
        SyntheticWorkload wl(tiny_params(0, 1, 64));
        wl.configure(1);
        Sm sm(0, fabric.ctx(), &router, &wl);
        sm.start();
        fabric.eq.run();
        return fabric.eq.now();
    };
    const Cycle t1 = run_with_credits(1);
    const Cycle t4 = run_with_credits(4);
    EXPECT_LT(static_cast<double>(t4), static_cast<double>(t1) * 0.4);
}

TEST(Sm, MoreWarpsHideLatency)
{
    auto run_with_warps = [](std::uint32_t warps) {
        TestFabric fabric;
        FakeRouter router(fabric, 400);
        SyntheticWorkload wl(tiny_params(2, warps, 256));
        wl.configure(1);
        Sm sm(0, fabric.ctx(), &router, &wl);
        sm.start();
        fabric.eq.run();
        return fabric.eq.now();
    };
    EXPECT_LT(run_with_warps(16), run_with_warps(2));
}

TEST(Sm, NonBlockingWritesDoNotStall)
{
    TestFabric fabric;
    fabric.cfg.blocking_writes = false;
    FakeRouter router(fabric, 800);
    WorkloadParams p = tiny_params(0, 1, 64);
    p.write_frac = 1.0;  // all stores
    SyntheticWorkload wl(p);
    wl.configure(1);
    Sm sm(0, fabric.ctx(), &router, &wl);
    sm.start();
    fabric.eq.run();
    // Fire-and-forget stores: far faster than 64 x 800 cycles.
    EXPECT_LT(fabric.eq.now(), 64u * 800u / 4);
}

namespace {

/** Two warps with exactly one single-line read step each. */
class TwoWarpWorkload : public Workload
{
  public:
    const WorkloadInfo &info() const override { return info_; }
    void configure(std::uint32_t) override {}
    std::uint32_t warps_on(std::uint32_t) const override { return 2; }

    bool
    next_step(std::uint32_t, std::uint32_t warp, WarpStep &out) override
    {
        if (done_[warp])
            return false;
        done_[warp] = true;
        out = WarpStep{};
        out.num_lines = 1;
        out.lines[0] = 0x1000 + warp; // distinct lines, distinct sets
        out.type = AccessType::kRead;
        return true;
    }

    Block synthesize_block(LineAddr) const override { return Block{}; }

  private:
    WorkloadInfo info_{"two-warp", true};
    bool done_[2] = {false, false};
};

} // namespace

TEST(Sm, NoDuplicateIssueEventForWarpsLaunchedAtCycleZero)
{
    // Regression: schedule_issue() used `issue_event_at_ != 0` as its
    // "nothing armed" sentinel, but cycle 0 is a valid schedule time — an
    // event armed AT cycle 0 was indistinguishable from none, so a second
    // completion in the same cycle armed a duplicate issue event.
    //
    // Find an SM index whose warps 0 and 1 both get a zero launch stagger
    // (mix64(index * 131 + w) % 512 == 0): with a zero-latency L1 and
    // router, both warps then issue AND complete their memory step at
    // cycle 0.
    std::uint32_t index = 0;
    bool found = false;
    for (std::uint64_t i = 0; i < 2'000'000; ++i) {
        if (mix64(i * 131) % 512 == 0 && mix64(i * 131 + 1) % 512 == 0) {
            index = static_cast<std::uint32_t>(i);
            found = true;
            break;
        }
    }
    ASSERT_TRUE(found) << "no SM index with two zero-stagger warps in range";

    TestFabric fabric;
    fabric.cfg.l1_latency = 0;
    fabric.cfg.warp_mem_credits = 1;
    FakeRouter router(fabric, 0);
    TwoWarpWorkload wl;
    Sm sm(index, fabric.ctx(), &router, &wl);
    sm.start();
    fabric.eq.run();

    EXPECT_TRUE(sm.done());
    EXPECT_EQ(sm.mem_instructions(), 2u);
    // Exactly two issue events: the one armed by start() (which issues
    // both warps), and ONE armed by the two same-cycle completions — the
    // second completion must be suppressed by the pending-event guard.
    EXPECT_EQ(sm.issue_events(), 2u);
}
