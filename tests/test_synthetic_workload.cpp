#include <gtest/gtest.h>

#include <set>

#include "workloads/synthetic_workload.hpp"

using namespace morpheus;

namespace {

WorkloadParams
base_params()
{
    WorkloadParams p;
    p.name = "wl-test";
    p.alu_per_mem = 4;
    p.lines_per_mem = 2;
    p.shared_ws_bytes = 1 << 20;
    p.warps_per_sm = 4;
    p.total_mem_instrs = 1000;
    return p;
}

} // namespace

TEST(SyntheticWorkload, TotalWorkIsFixedAcrossSmCounts)
{
    for (std::uint32_t sms : {2u, 5u, 10u}) {
        SyntheticWorkload wl(base_params());
        wl.configure(sms);
        std::uint64_t steps = 0;
        WarpStep step;
        for (std::uint32_t sm = 0; sm < sms; ++sm) {
            for (std::uint32_t w = 0; w < wl.warps_on(sm); ++w) {
                while (wl.next_step(sm, w, step))
                    ++steps;
            }
        }
        EXPECT_EQ(steps, 1000u) << "sms=" << sms;
    }
}

TEST(SyntheticWorkload, StepsCarryAluAndMemWork)
{
    SyntheticWorkload wl(base_params());
    wl.configure(2);
    WarpStep step;
    ASSERT_TRUE(wl.next_step(0, 0, step));
    EXPECT_GE(step.num_lines, 1u);
    EXPECT_LE(step.num_lines, 2u);
    EXPECT_GE(step.instructions(), step.alu_instrs);
}

TEST(SyntheticWorkload, WriteAndAtomicFractionsRespected)
{
    WorkloadParams p = base_params();
    p.total_mem_instrs = 20'000;
    p.write_frac = 0.3;
    p.atomic_frac = 0.1;
    SyntheticWorkload wl(p);
    wl.configure(2);
    int reads = 0;
    int writes = 0;
    int atomics = 0;
    WarpStep step;
    for (std::uint32_t sm = 0; sm < 2; ++sm) {
        for (std::uint32_t w = 0; w < 4; ++w) {
            while (wl.next_step(sm, w, step)) {
                switch (step.type) {
                  case AccessType::kRead:
                    ++reads;
                    break;
                  case AccessType::kWrite:
                    ++writes;
                    break;
                  default:
                    ++atomics;
                    break;
                }
            }
        }
    }
    const double total = reads + writes + atomics;
    EXPECT_NEAR(writes / total, 0.3, 0.03);
    EXPECT_NEAR(atomics / total, 0.1, 0.02);
}

TEST(SyntheticWorkload, DeterministicAcrossInstances)
{
    SyntheticWorkload a(base_params());
    SyntheticWorkload b(base_params());
    a.configure(3);
    b.configure(3);
    WarpStep sa;
    WarpStep sb;
    for (int i = 0; i < 200; ++i) {
        const bool ra = a.next_step(1, 2, sa);
        const bool rb = b.next_step(1, 2, sb);
        ASSERT_EQ(ra, rb);
        if (!ra)
            break;
        ASSERT_EQ(sa.alu_instrs, sb.alu_instrs);
        ASSERT_EQ(sa.num_lines, sb.num_lines);
        for (std::uint32_t j = 0; j < sa.num_lines; ++j)
            ASSERT_EQ(sa.lines[j], sb.lines[j]);
    }
}

TEST(SyntheticWorkload, FootprintGrowsWithPrivateRegions)
{
    WorkloadParams p = base_params();
    p.per_warp_ws_bytes = 4096;
    SyntheticWorkload wl(p);
    wl.configure(10);
    EXPECT_EQ(wl.footprint_bytes(),
              p.shared_ws_bytes + 4096ull * 10 * p.warps_per_sm);
}

TEST(SyntheticWorkload, PrivateRegionsAreDisjointAcrossWarps)
{
    WorkloadParams p = base_params();
    p.pattern = PatternKind::kPrivateLoop;
    p.per_warp_ws_bytes = 1024;
    p.reuse_frac = 0;
    p.total_mem_instrs = 640;
    SyntheticWorkload wl(p);
    wl.configure(2);
    std::set<LineAddr> warp_a;
    std::set<LineAddr> warp_b;
    WarpStep step;
    while (wl.next_step(0, 0, step))
        warp_a.insert(step.lines, step.lines + step.num_lines);
    while (wl.next_step(1, 1, step))
        warp_b.insert(step.lines, step.lines + step.num_lines);
    for (LineAddr l : warp_a)
        EXPECT_EQ(warp_b.count(l), 0u);
}

TEST(SyntheticWorkload, BlockSynthesisUsesProfile)
{
    WorkloadParams p = base_params();
    p.data.high_frac = 1.0;
    p.data.low_frac = 0.0;
    SyntheticWorkload wl(p);
    const Block b = wl.synthesize_block(3);
    EXPECT_LE(bdi_compress(b).size_bytes, 32u);
}
