#include <gtest/gtest.h>

#include "morpheus/indirect_mov.hpp"
#include "sim/rng.hpp"

using namespace morpheus;

namespace {

Block
block_with(std::uint8_t fill)
{
    Block b;
    b.fill(fill);
    return b;
}

} // namespace

TEST(IndirectMovCost, SoftwareVsHardware)
{
    // Algorithm 2: brx.idx + MOV + return = 3 instructions plus a
    // branch bubble; the §4.3.2 ISA extension needs one instruction.
    EXPECT_EQ(indirect_mov_cost(false).instructions, 3u);
    EXPECT_GT(indirect_mov_cost(false).total_issue_slots(), 3u);
    EXPECT_EQ(indirect_mov_cost(true).instructions, 1u);
    EXPECT_EQ(indirect_mov_cost(true).total_issue_slots(), 1u);
}

TEST(WarpSet, TagLookupMissOnEmpty)
{
    WarpSetEmulator warp;
    EXPECT_FALSE(warp.tag_lookup(0x42).hit);
}

TEST(WarpSet, InsertThenLookupHitsAtRightIndex)
{
    WarpSetEmulator warp;
    warp.insert(0x42, block_with(7), false);
    const auto r = warp.tag_lookup(0x42);
    ASSERT_TRUE(r.hit);
    EXPECT_EQ(warp.indirect_mov_read(r.block_index), block_with(7));
}

TEST(WarpSet, IndirectMovReadsEveryRegister)
{
    WarpSetEmulator warp;
    for (std::uint32_t i = 0; i < WarpSetEmulator::kBlocks; ++i)
        warp.indirect_mov_write(i, block_with(static_cast<std::uint8_t>(i)));
    for (std::uint32_t i = 0; i < WarpSetEmulator::kBlocks; ++i)
        EXPECT_EQ(warp.indirect_mov_read(i)[0], i);
}

TEST(WarpSet, FillsAllThirtyTwoWays)
{
    WarpSetEmulator warp;
    for (std::uint64_t t = 0; t < 32; ++t)
        warp.insert(t, block_with(static_cast<std::uint8_t>(t)), false);
    EXPECT_EQ(warp.valid_blocks(), 32u);
    for (std::uint64_t t = 0; t < 32; ++t)
        EXPECT_TRUE(warp.contains(t));
}

TEST(WarpSet, LruEvictionPicksColdestBlock)
{
    WarpSetEmulator warp;
    for (std::uint64_t t = 0; t < 32; ++t)
        warp.insert(t, block_with(0), false);
    // Touch everything except tag 5 (several rounds, to push its counter
    // down via the decrement-on-other-hits rule of Algorithm 1).
    for (int round = 0; round < 3; ++round) {
        for (std::uint64_t t = 0; t < 32; ++t) {
            if (t != 5)
                warp.tag_lookup(t);
        }
    }
    warp.insert(100, block_with(1), false);
    EXPECT_FALSE(warp.contains(5));
    EXPECT_TRUE(warp.contains(100));
}

TEST(WarpSet, DirtyVictimReportsWriteback)
{
    WarpSetEmulator warp;
    for (std::uint64_t t = 0; t < 32; ++t)
        warp.insert(t, block_with(0), t == 0);  // tag 0 dirty
    for (int round = 0; round < 3; ++round) {
        for (std::uint64_t t = 1; t < 32; ++t)
            warp.tag_lookup(t);
    }
    const auto wb = warp.insert(200, block_with(0), false);
    ASSERT_TRUE(wb.has_value());
    EXPECT_EQ(*wb, 0u);
}

TEST(WarpSet, WriteHitMarksDirtyAndUpdatesData)
{
    WarpSetEmulator warp;
    warp.insert(9, block_with(1), false);
    EXPECT_TRUE(warp.write_hit(9, block_with(2)));
    const auto r = warp.tag_lookup(9);
    ASSERT_TRUE(r.hit);
    EXPECT_EQ(warp.indirect_mov_read(r.block_index)[0], 2);
    EXPECT_FALSE(warp.write_hit(999, block_with(3)));
}

/** Property: the emulator behaves as a 32-entry fully associative cache. */
TEST(WarpSet, RandomTrafficAgainstReferenceModel)
{
    WarpSetEmulator warp;
    Rng rng(0xFACE);
    std::vector<std::uint64_t> reference;  // tags in LRU order (front = LRU)
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t tag = rng.next_below(64);
        const auto r = warp.tag_lookup(tag);
        const auto it = std::find(reference.begin(), reference.end(), tag);
        const bool ref_hit = it != reference.end();
        ASSERT_EQ(r.hit, ref_hit) << "step " << i;
        if (ref_hit) {
            reference.erase(it);
            reference.push_back(tag);
        } else {
            warp.insert(tag, block_with(static_cast<std::uint8_t>(tag)), false);
            if (reference.size() == 32)
                reference.erase(reference.begin());
            reference.push_back(tag);
        }
    }
}
