#include <gtest/gtest.h>

#include "gpu/gpu_system.hpp"
#include "morpheus/morpheus_controller.hpp"
#include "workloads/synthetic_workload.hpp"

using namespace morpheus;

namespace {

WorkloadParams
thrash_app()
{
    // kmeans-like: per-warp private loops whose total footprint exceeds
    // the conventional LLC but fits conventional + extended.
    WorkloadParams p;
    p.name = "morpheus-int";
    p.pattern = PatternKind::kPrivateLoop;
    p.alu_per_mem = 4;
    p.lines_per_mem = 1;
    p.shared_ws_bytes = 1 << 20;
    p.per_warp_ws_bytes = 8 * 1024;
    p.reuse_frac = 0.2;
    p.hot_frac = 0.5;
    p.warps_per_sm = 32;
    p.write_frac = 0.25;
    p.total_mem_instrs = 80'000;
    return p;
}

RunResult
run_morpheus(const WorkloadParams &params, std::uint32_t compute, std::uint32_t cache,
             bool compression = true, bool hw_mov = true,
             PredictionMode mode = PredictionMode::kBloom)
{
    SyntheticWorkload wl(params);
    SystemSetup setup;
    setup.compute_sms = compute;
    setup.morpheus.enabled = cache > 0;
    setup.morpheus.cache_sms = cache;
    setup.morpheus.kernel.compression = compression;
    setup.morpheus.kernel.hw_indirect_mov = hw_mov;
    setup.morpheus.prediction = mode;
    GpuSystem sys(setup, wl);
    return sys.run();
}

} // namespace

TEST(MorpheusIntegration, ExtendedLlcReducesDramTraffic)
{
    WorkloadParams p = thrash_app();
    p.total_mem_instrs = 200'000;  // several reuse passes
    const RunResult base = run_morpheus(p, 26, 0);
    const RunResult morph = run_morpheus(p, 26, 42);
    EXPECT_LT(static_cast<double>(morph.dram_reads),
              static_cast<double>(base.dram_reads) * 0.7);
    EXPECT_GT(morph.ext_requests, 0u);
    EXPECT_GT(morph.ext_hits, morph.ext_misses);
}

TEST(MorpheusIntegration, BeatsEqualComputeBaselineOnThrashWorkload)
{
    const WorkloadParams p = thrash_app();
    const RunResult base = run_morpheus(p, 26, 0);
    const RunResult morph = run_morpheus(p, 26, 42);
    EXPECT_LT(morph.cycles, base.cycles);
}

TEST(MorpheusIntegration, CapacityMatchesCacheSmCount)
{
    const WorkloadParams p = thrash_app();
    const RunResult r = run_morpheus(p, 42, 26);
    EXPECT_NEAR(static_cast<double>(r.ext_capacity_bytes),
                26.0 * 328 * 1024, 26.0 * 8 * 1024);
}

TEST(MorpheusIntegration, PredictorKeepsFalsePositivesLow)
{
    const WorkloadParams p = thrash_app();
    const RunResult r = run_morpheus(p, 34, 34);
    ASSERT_GT(r.ext_predicted_hits, 0u);
    const double fp_rate = static_cast<double>(r.ext_false_positives) /
                           static_cast<double>(r.ext_predicted_hits);
    EXPECT_LT(fp_rate, 0.15);
}

TEST(MorpheusIntegration, NoPredictionSlowerThanBloom)
{
    const WorkloadParams p = thrash_app();
    const RunResult bloom = run_morpheus(p, 34, 34, false, false, PredictionMode::kBloom);
    const RunResult none = run_morpheus(p, 34, 34, false, false, PredictionMode::kNone);
    EXPECT_GT(static_cast<double>(none.cycles), static_cast<double>(bloom.cycles) * 0.98);
}

TEST(MorpheusIntegration, BloomCloseToPerfect)
{
    const WorkloadParams p = thrash_app();
    const RunResult bloom = run_morpheus(p, 34, 34, false, false, PredictionMode::kBloom);
    const RunResult perfect =
        run_morpheus(p, 34, 34, false, false, PredictionMode::kPerfect);
    const double gap = static_cast<double>(bloom.cycles) / static_cast<double>(perfect.cycles);
    EXPECT_LT(gap, 1.10);  // paper: within ~1%
}

TEST(MorpheusIntegration, CompressionIncreasesEffectiveCapacity)
{
    // Shrink the cache-SM pool so extended capacity binds: compression's
    // 2-4x packing then shows up directly as fewer extended misses.
    WorkloadParams p = thrash_app();
    p.data.high_frac = 0.5;
    p.data.low_frac = 0.4;
    p.per_warp_ws_bytes = 16 * 1024;
    p.total_mem_instrs = 200'000;
    const RunResult plain = run_morpheus(p, 26, 10, false, true);
    const RunResult packed = run_morpheus(p, 26, 10, true, true);
    // More blocks resident => fewer extended misses + predicted misses.
    EXPECT_LT(packed.ext_misses + packed.ext_predicted_misses,
              plain.ext_misses + plain.ext_predicted_misses);
}

TEST(MorpheusIntegration, ExtLatencyOrderingMatchesFig5)
{
    const WorkloadParams p = thrash_app();
    const RunResult r = run_morpheus(p, 34, 34);
    // Predicted misses are served at conventional-miss speed, cheaper
    // than mispredicted (forwarded) misses.
    if (r.ext_misses > 10 && r.ext_predicted_misses > 10) {
        EXPECT_LT(r.pred_miss_latency, r.ext_miss_latency);
    }
    // Extended hits are slower than conventional hits but far faster
    // than mispredicted misses (unloaded anchors: 325 vs 160 vs 773).
    EXPECT_GT(r.ext_hit_latency, r.conv_hit_latency);
}

TEST(MorpheusIntegration, EnergyEfficiencyImprovesOnThrashWorkload)
{
    // Against the 68-SM baseline (the paper's BL), Morpheus wins on both
    // time and energy for thrash-class workloads.
    const WorkloadParams p = thrash_app();
    const RunResult base = run_morpheus(p, 68, 0);
    const RunResult morph = run_morpheus(p, 26, 42);
    EXPECT_GT(morph.perf_per_watt, base.perf_per_watt);
}

TEST(MorpheusIntegration, DeterministicAcrossRuns)
{
    const WorkloadParams p = thrash_app();
    const RunResult a = run_morpheus(p, 42, 26);
    const RunResult b = run_morpheus(p, 42, 26);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ext_hits, b.ext_hits);
    EXPECT_EQ(a.ext_false_positives, b.ext_false_positives);
}
