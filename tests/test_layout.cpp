#include <gtest/gtest.h>

#include "morpheus/layout.hpp"

using namespace morpheus;

namespace {
constexpr std::uint64_t kRf = 256 * 1024;
}

TEST(Layout, PaperAnchorEightWarpsPeaksCapacity)
{
    // Paper Fig. 11a: maximum RF capacity 239 KiB at 8 warps.
    const RfLayout l = rf_layout(kRf, 8);
    EXPECT_EQ(l.regs_per_thread, 256u);  // per-thread architectural cap
    EXPECT_NEAR(static_cast<double>(l.sm_bytes()) / 1024.0, 239.0, 2.0);
}

TEST(Layout, PaperAnchorFortyEightWarps)
{
    // Paper Fig. 8: 42 regs/warp-thread, 32 data blocks, 192 KiB total.
    const RfLayout l = rf_layout(kRf, 48);
    EXPECT_EQ(l.regs_per_thread, 42u);
    EXPECT_EQ(l.data_blocks, 32u);
    EXPECT_EQ(l.sm_bytes(), 192u * 1024u);
}

TEST(Layout, OneWarpIsRegisterCapLimited)
{
    const RfLayout l = rf_layout(kRf, 1);
    EXPECT_EQ(l.regs_per_thread, 256u);
    EXPECT_LT(l.sm_bytes(), 32u * 1024u);  // cannot use the whole RF
}

TEST(Layout, CapacityCurveShapeMatchesFig11a)
{
    // Rises steeply to the 8-warp peak, then declines gently as auxiliary
    // state grows (paper Fig. 11a).
    const std::uint64_t c1 = rf_layout(kRf, 1).sm_bytes();
    const std::uint64_t c8 = rf_layout(kRf, 8).sm_bytes();
    const std::uint64_t c16 = rf_layout(kRf, 16).sm_bytes();
    const std::uint64_t c32 = rf_layout(kRf, 32).sm_bytes();
    const std::uint64_t c48 = rf_layout(kRf, 48).sm_bytes();
    EXPECT_LT(c1, c8);
    EXPECT_GT(c8, c16);
    EXPECT_GT(c16, c32);
    EXPECT_GT(c32, c48);
}

TEST(Layout, CombinedConfigMatchesPaperTotal)
{
    // §5: 32 RF warps + 16 L1 warps ~ 328 KiB per cache-mode SM.
    const std::uint64_t total =
        rf_layout(kRf, 32).sm_bytes() + l1_ext_capacity(128 * 1024);
    EXPECT_NEAR(static_cast<double>(total) / 1024.0, 328.0, 8.0);
}

TEST(Layout, L1AndSmemAreWarpCountIndependent)
{
    EXPECT_EQ(l1_ext_capacity(128 * 1024), 128u * 1024u);
    EXPECT_EQ(smem_ext_capacity(128 * 1024), 128u * 1024u);
}

TEST(Layout, ZeroWarpsYieldsNothing)
{
    const RfLayout l = rf_layout(kRf, 0);
    EXPECT_EQ(l.sm_bytes(), 0u);
    EXPECT_EQ(l.data_blocks, 0u);
}
