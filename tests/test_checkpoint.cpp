#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "harness/checkpoint.hpp"
#include "harness/runner.hpp"
#include "sim/state_io.hpp"

using namespace morpheus;

namespace {

WorkloadParams
small_app(const char *name)
{
    WorkloadParams p;
    p.name = name;
    p.pattern = PatternKind::kPrivateLoop;
    p.alu_per_mem = 4;
    p.shared_ws_bytes = 1 << 20;
    p.per_warp_ws_bytes = 4 * 1024;
    p.reuse_frac = 0.3;
    p.hot_frac = 0.4;
    p.warps_per_sm = 16;
    p.write_frac = 0.2;
    p.total_mem_instrs = 30'000;
    return p;
}

SystemSetup
baseline_setup()
{
    SystemSetup s;
    s.compute_sms = 8;
    return s;
}

SystemSetup
morpheus_setup()
{
    SystemSetup s;
    s.compute_sms = 8;
    s.morpheus.enabled = true;
    s.morpheus.cache_sms = 4;
    s.morpheus.prediction = PredictionMode::kBloom;
    return s;
}

SystemSetup
unified_setup()
{
    SystemSetup s;
    s.compute_sms = 8;
    s.l1_bonus_bytes = 64 * 1024;
    return s;
}

std::string
result_bytes(const RunResult &r)
{
    StateWriter w;
    RunResult copy = r;
    copy.state(w);
    return w.bytes();
}

/** Unique temp path per test; removed by the caller. */
std::string
tmp_path(const char *tag)
{
    return std::string(::testing::TempDir()) + "morpheus_" + tag + ".mchk";
}

class TempFile
{
  public:
    explicit TempFile(const char *tag) : path_(tmp_path(tag)) {}
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

} // namespace

TEST(Checkpoint, DefaultControlsMatchPlainRun)
{
    const SystemSetup setup = morpheus_setup();
    const WorkloadParams p = small_app("controls");
    const RunResult plain = run_setup(setup, p);
    const RunResult controlled = run_setup_controlled(setup, p, RunControls{});
    EXPECT_EQ(result_bytes(plain), result_bytes(controlled));
}

TEST(Checkpoint, SaveLoadRoundTrip)
{
    TempFile file("roundtrip");
    const SystemSetup setup = baseline_setup();
    const WorkloadParams p = small_app("roundtrip");
    SyntheticWorkload wl(p);
    GpuSystem sys(setup, wl);
    sys.begin();
    sys.event_queue().run_until(2'000);
    const Checkpoint ck = capture_checkpoint(sys, p, 2'000, false);

    std::string error;
    ASSERT_TRUE(save_checkpoint(file.path(), ck, error)) << error;
    Checkpoint back;
    ASSERT_TRUE(load_checkpoint(file.path(), back, error)) << error;
    EXPECT_EQ(back.cycle, ck.cycle);
    EXPECT_EQ(back.flags, ck.flags);
    EXPECT_EQ(back.state, ck.state);
    EXPECT_EQ(back.setup.compute_sms, setup.compute_sms);
    EXPECT_EQ(back.params.name, p.name);
    EXPECT_EQ(back.params.seed, p.seed);
}

/**
 * The tentpole oracle: for each evaluated system family, a run that is
 * checkpointed and then completed from the restored checkpoint must
 * produce a RunResult bit-identical to the uninterrupted run's.
 */
TEST(Checkpoint, RestoreOracleBaseline)
{
    TempFile file("oracle_base");
    const SystemSetup setup = baseline_setup();
    const WorkloadParams p = small_app("oracle-base");
    const RunResult clean = run_setup(setup, p);
    run_setup_checkpointed(setup, p, 5'000, file.path());

    Checkpoint ck;
    std::string error;
    ASSERT_TRUE(load_checkpoint(file.path(), ck, error)) << error;
    EXPECT_TRUE(ck.is_final());
    EXPECT_EQ(result_bytes(restore_run(ck)), result_bytes(clean));
}

TEST(Checkpoint, RestoreOracleMorpheus)
{
    TempFile file("oracle_morpheus");
    const SystemSetup setup = morpheus_setup();
    const WorkloadParams p = small_app("oracle-morpheus");
    const RunResult clean = run_setup(setup, p);
    run_setup_checkpointed(setup, p, 5'000, file.path());

    Checkpoint ck;
    std::string error;
    ASSERT_TRUE(load_checkpoint(file.path(), ck, error)) << error;
    EXPECT_TRUE(ck.is_final());
    EXPECT_EQ(result_bytes(restore_run(ck)), result_bytes(clean));
}

TEST(Checkpoint, RestoreOracleUnifiedSmMem)
{
    TempFile file("oracle_unified");
    const SystemSetup setup = unified_setup();
    const WorkloadParams p = small_app("oracle-unified");
    const RunResult clean = run_setup(setup, p);
    run_setup_checkpointed(setup, p, 5'000, file.path());

    Checkpoint ck;
    std::string error;
    ASSERT_TRUE(load_checkpoint(file.path(), ck, error)) << error;
    EXPECT_TRUE(ck.is_final());
    EXPECT_EQ(result_bytes(restore_run(ck)), result_bytes(clean));
}

/** A mid-run checkpoint restores via prefix replay and still completes
 *  bit-identically. Captures the FIRST boundary only — the periodic
 *  writer would otherwise overwrite it with the final one. */
void
mid_run_oracle(const SystemSetup &setup, const char *tag)
{
    SCOPED_TRACE(tag);
    TempFile file(tag);
    const WorkloadParams p = small_app(tag);
    const RunResult clean = run_setup(setup, p);

    RunControls rc;
    rc.checkpoint_every = 3'000;
    bool captured = false;
    rc.on_checkpoint = [&](GpuSystem &sys, Cycle boundary, bool final) {
        if (captured)
            return;
        captured = true;
        ASSERT_FALSE(final);
        const Checkpoint ck = capture_checkpoint(sys, p, boundary, final);
        std::string error;
        ASSERT_TRUE(save_checkpoint(file.path(), ck, error)) << error;
    };
    run_setup_controlled(setup, p, rc);
    ASSERT_TRUE(captured);

    Checkpoint ck;
    std::string error;
    ASSERT_TRUE(load_checkpoint(file.path(), ck, error)) << error;
    EXPECT_FALSE(ck.is_final());
    EXPECT_EQ(ck.cycle, 3'000u);
    EXPECT_EQ(result_bytes(restore_run(ck)), result_bytes(clean));
}

TEST(Checkpoint, MidRunRestoreReplaysPrefixBaseline)
{
    mid_run_oracle(baseline_setup(), "midrun-base");
}

TEST(Checkpoint, MidRunRestoreReplaysPrefixMorpheus)
{
    mid_run_oracle(morpheus_setup(), "midrun-morpheus");
}

TEST(Checkpoint, MidRunRestoreReplaysPrefixUnifiedSmMem)
{
    mid_run_oracle(unified_setup(), "midrun-unified");
}

TEST(Checkpoint, ChunkedRunMatchesUnchunked)
{
    // The chunked event loop (checkpoint_every with a no-op callback) must
    // be bit-identical to the single run_until call.
    const SystemSetup setup = baseline_setup();
    const WorkloadParams p = small_app("chunked");
    const RunResult plain = run_setup(setup, p);
    RunControls rc;
    rc.checkpoint_every = 1'000;
    EXPECT_EQ(result_bytes(run_setup_controlled(setup, p, rc)), result_bytes(plain));
}

TEST(Checkpoint, RejectsBadMagic)
{
    TempFile file("badmagic");
    const SystemSetup setup = baseline_setup();
    const WorkloadParams p = small_app("badmagic");
    run_setup_checkpointed(setup, p, 5'000, file.path());

    std::FILE *f = std::fopen(file.path().c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    const char junk[4] = {'J', 'U', 'N', 'K'};
    ASSERT_EQ(std::fwrite(junk, 1, 4, f), 4u);
    std::fclose(f);

    Checkpoint ck;
    std::string error;
    EXPECT_FALSE(load_checkpoint(file.path(), ck, error));
    EXPECT_NE(error.find("bad magic"), std::string::npos) << error;
}

TEST(Checkpoint, RejectsFutureFormatVersion)
{
    TempFile file("badversion");
    const SystemSetup setup = baseline_setup();
    const WorkloadParams p = small_app("badversion");
    run_setup_checkpointed(setup, p, 5'000, file.path());

    std::FILE *f = std::fopen(file.path().c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 4, SEEK_SET), 0);
    const std::uint32_t future = 999;
    ASSERT_EQ(std::fwrite(&future, sizeof future, 1, f), 1u);
    std::fclose(f);

    Checkpoint ck;
    std::string error;
    EXPECT_FALSE(load_checkpoint(file.path(), ck, error));
    EXPECT_NE(error.find("format version"), std::string::npos) << error;
}

TEST(Checkpoint, RejectsTruncatedFile)
{
    TempFile file("truncated");
    const SystemSetup setup = baseline_setup();
    const WorkloadParams p = small_app("truncated");
    run_setup_checkpointed(setup, p, 5'000, file.path());

    std::FILE *f = std::fopen(file.path().c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string bytes;
    char buf[65536];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        bytes.append(buf, n);
    std::fclose(f);
    ASSERT_GT(bytes.size(), 100u);
    bytes.resize(bytes.size() / 2);
    f = std::fopen(file.path().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);

    Checkpoint ck;
    std::string error;
    EXPECT_FALSE(load_checkpoint(file.path(), ck, error));
    EXPECT_FALSE(error.empty());
}

TEST(Checkpoint, RejectsCorruptedStateDigest)
{
    TempFile file("corrupt");
    const SystemSetup setup = baseline_setup();
    const WorkloadParams p = small_app("corrupt");
    run_setup_checkpointed(setup, p, 5'000, file.path());

    // Flip one byte near the end of the state blob.
    std::FILE *f = std::fopen(file.path().c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, -8, SEEK_END), 0);
    char b = 0;
    ASSERT_EQ(std::fread(&b, 1, 1, f), 1u);
    ASSERT_EQ(std::fseek(f, -8, SEEK_END), 0);
    b = static_cast<char>(b ^ 0x5A);
    ASSERT_EQ(std::fwrite(&b, 1, 1, f), 1u);
    std::fclose(f);

    Checkpoint ck;
    std::string error;
    EXPECT_FALSE(load_checkpoint(file.path(), ck, error));
    EXPECT_NE(error.find("digest"), std::string::npos) << error;
}

TEST(Checkpoint, LoadMissingFileFails)
{
    Checkpoint ck;
    std::string error;
    EXPECT_FALSE(load_checkpoint("/nonexistent/dir/none.mchk", ck, error));
    EXPECT_FALSE(error.empty());
}

TEST(Checkpoint, CancellationThrows)
{
    const SystemSetup setup = baseline_setup();
    const WorkloadParams p = small_app("cancel");
    std::atomic<bool> cancel{true};
    RunControls rc;
    rc.cancel = &cancel;
    EXPECT_THROW(run_setup_controlled(setup, p, rc), SimulationCancelled);
}

TEST(Checkpoint, InjectedThrowFaultFires)
{
    const SystemSetup setup = baseline_setup();
    const WorkloadParams p = small_app("fault");
    RunControls rc;
    rc.fault = RunFault::kThrow;
    rc.fault_cycle = 1'000;
    EXPECT_THROW(run_setup_controlled(setup, p, rc), InjectedFault);
}

TEST(Checkpoint, DisarmedFaultPlanIsHarmless)
{
    // fault == kNone must not schedule anything, whatever fault_cycle says.
    const SystemSetup setup = baseline_setup();
    const WorkloadParams p = small_app("fault-none");
    const RunResult plain = run_setup(setup, p);
    RunControls rc;
    rc.fault = RunFault::kNone;
    rc.fault_cycle = 1'000;
    EXPECT_EQ(result_bytes(run_setup_controlled(setup, p, rc)), result_bytes(plain));
}
