#include <gtest/gtest.h>

#include <string>

#include "harness/report.hpp"

using namespace morpheus;

namespace {

/** A two-entry report with round numbers for tolerance math. */
RunReport
base_report()
{
    RunReport report("diff_test");
    ReportEntry &a = report.add_entry("app/BL");
    a.set("cycles", 1000.0);
    a.set("ipc", 2.0);
    ReportEntry &b = report.add_entry("app/ALL");
    b.set("cycles", 500.0);
    b.set("ipc", 4.0);
    return report;
}

bool
has_kind(const DiffResult &result, DiffFinding::Kind kind)
{
    for (const auto &f : result.findings) {
        if (f.kind == kind)
            return true;
    }
    return false;
}

} // namespace

TEST(ReportDiff, IdenticalReportsPass)
{
    const RunReport a = base_report();
    const DiffResult result = diff_reports(a, a);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.entries_compared, 2u);
    EXPECT_EQ(result.metrics_compared, 4u);
}

TEST(ReportDiff, RelativeToleranceBoundary)
{
    DiffOptions opts;
    opts.rel_tol = 0.02;
    opts.abs_tol = 0;

    const RunReport baseline = base_report();

    // +2% of max(|a|,|b|): 1020 vs 1000 -> tol = 0.02 * 1020 = 20.4 >= 20.
    RunReport inside = base_report();
    const_cast<ReportEntry &>(inside.entries()[0]).set("cycles", 1020.0);
    EXPECT_TRUE(diff_reports(baseline, inside, opts).ok());

    // 1030 vs 1000 -> delta 30 > tol 20.6: regression.
    RunReport outside = base_report();
    const_cast<ReportEntry &>(outside.entries()[0]).set("cycles", 1030.0);
    const DiffResult result = diff_reports(baseline, outside, opts);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].kind, DiffFinding::Kind::kValue);
    EXPECT_EQ(result.findings[0].label, "app/BL");
    EXPECT_EQ(result.findings[0].metric, "cycles");
    EXPECT_EQ(result.findings[0].baseline, 1000.0);
    EXPECT_EQ(result.findings[0].candidate, 1030.0);
}

TEST(ReportDiff, AbsoluteToleranceCoversZeroBaselines)
{
    DiffOptions opts;
    opts.rel_tol = 0; // relative tolerance is useless around zero
    opts.abs_tol = 1e-6;

    RunReport baseline("zeros");
    baseline.add_entry("e").set("m", 0.0);

    RunReport inside("zeros");
    inside.add_entry("e").set("m", 5e-7);
    EXPECT_TRUE(diff_reports(baseline, inside, opts).ok());

    RunReport outside("zeros");
    outside.add_entry("e").set("m", 2e-6);
    EXPECT_FALSE(diff_reports(baseline, outside, opts).ok());
}

TEST(ReportDiff, PerMetricToleranceOverride)
{
    DiffOptions opts;
    opts.rel_tol = 0.01;
    opts.abs_tol = 0;
    opts.metric_rel_tol.emplace_back("ipc", 0.5);

    // ipc moves 25% (allowed by the override), cycles stays put.
    RunReport candidate = base_report();
    const_cast<ReportEntry &>(candidate.entries()[1]).set("ipc", 5.0);
    EXPECT_TRUE(diff_reports(base_report(), candidate, opts).ok());

    // The same 25% move on cycles trips the default tolerance.
    RunReport candidate2 = base_report();
    const_cast<ReportEntry &>(candidate2.entries()[1]).set("cycles", 625.0);
    EXPECT_FALSE(diff_reports(base_report(), candidate2, opts).ok());
}

TEST(ReportDiff, MissingAndExtraEntriesAreFindings)
{
    RunReport shorter("diff_test");
    shorter.add_entry("app/BL").set("cycles", 1000.0);
    const_cast<ReportEntry &>(shorter.entries()[0]).set("ipc", 2.0);

    const DiffResult missing = diff_reports(base_report(), shorter);
    EXPECT_FALSE(missing.ok());
    EXPECT_TRUE(has_kind(missing, DiffFinding::Kind::kMissingEntry));

    const DiffResult extra = diff_reports(shorter, base_report());
    EXPECT_FALSE(extra.ok());
    EXPECT_TRUE(has_kind(extra, DiffFinding::Kind::kExtraEntry));
}

TEST(ReportDiff, ChangedLabelIsAFinding)
{
    RunReport renamed = base_report();
    const_cast<ReportEntry &>(renamed.entries()[1]).label = "app/RENAMED";
    const DiffResult result = diff_reports(base_report(), renamed);
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(has_kind(result, DiffFinding::Kind::kMissingEntry));
}

TEST(ReportDiff, MissingMetricIsAFinding)
{
    RunReport baseline = base_report();
    const_cast<ReportEntry &>(baseline.entries()[0]).set("extra_metric", 7.0);
    const DiffResult result = diff_reports(baseline, base_report());
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(has_kind(result, DiffFinding::Kind::kMissingMetric));

    // The reverse direction — candidate has metrics the baseline lacks —
    // is a compatible addition, not a finding.
    EXPECT_TRUE(diff_reports(base_report(), baseline).ok());
}

TEST(ReportDiff, ContextMismatchShortCircuits)
{
    RunReport other = base_report();
    other.set_scenario("different_scenario");
    DiffResult result = diff_reports(base_report(), other);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(has_kind(result, DiffFinding::Kind::kContext));
    EXPECT_EQ(result.entries_compared, 0u);

    RunReport scaled = base_report();
    scaled.set_work_scale(0.02);
    EXPECT_TRUE(has_kind(diff_reports(base_report(), scaled), DiffFinding::Kind::kContext));

    RunReport nondet = base_report();
    nondet.set_deterministic(false);
    EXPECT_TRUE(has_kind(diff_reports(base_report(), nondet), DiffFinding::Kind::kContext));
}

TEST(ReportDiff, NonDeterministicReportsCompareStructureOnly)
{
    RunReport baseline = base_report();
    baseline.set_deterministic(false);

    // Wildly different values: fine, wall-clock numbers are not gated.
    RunReport candidate = base_report();
    candidate.set_deterministic(false);
    const_cast<ReportEntry &>(candidate.entries()[0]).set("cycles", 999999.0);
    EXPECT_TRUE(diff_reports(baseline, candidate).ok());

    // But a vanished metric is still structural breakage.
    RunReport renamed("diff_test");
    renamed.set_deterministic(false);
    renamed.add_entry("app/BL").set("cycles", 1000.0);
    const_cast<ReportEntry &>(renamed.entries()[0]).set("renamed_ipc", 2.0);
    renamed.add_entry("app/ALL").set("cycles", 500.0);
    const_cast<ReportEntry &>(renamed.entries()[1]).set("ipc", 4.0);
    EXPECT_FALSE(diff_reports(baseline, renamed).ok());
}

TEST(ReportDiff, SurvivesJsonRoundTrip)
{
    // The gate's real path: both sides parsed from disk bytes.
    RunReport perturbed = base_report();
    const_cast<ReportEntry &>(perturbed.entries()[0]).set("cycles", 1500.0);

    RunReport baseline_rt;
    RunReport perturbed_rt;
    std::string error;
    ASSERT_TRUE(RunReport::parse_json(base_report().to_json(), baseline_rt, error)) << error;
    ASSERT_TRUE(RunReport::parse_json(perturbed.to_json(), perturbed_rt, error)) << error;

    EXPECT_TRUE(diff_reports(baseline_rt, baseline_rt).ok());
    EXPECT_FALSE(diff_reports(baseline_rt, perturbed_rt).ok());
}
