#include <gtest/gtest.h>

#include <unordered_map>

#include "cache/set_assoc_cache.hpp"
#include "sim/rng.hpp"

using namespace morpheus;

TEST(SetAssocCache, ColdMissesThenHits)
{
    SetAssocCache cache(4, 2);
    EXPECT_FALSE(cache.read(10).hit);
    cache.fill(10, 7, false);
    const auto r = cache.read(10);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.version, 7u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(SetAssocCache, CapacityBytes)
{
    SetAssocCache cache(256, 16);
    EXPECT_EQ(cache.capacity_bytes(), 256u * 16 * kLineBytes);
}

TEST(SetAssocCache, LruEvictionWithinSet)
{
    SetAssocCache cache(1, 2);  // one set, two ways
    cache.fill(1, 1, false);
    cache.fill(2, 2, false);
    cache.read(1);  // line 2 becomes LRU
    const auto ev = cache.fill(3, 3, false);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(ev->line, 2u);
    EXPECT_TRUE(cache.probe(1));
    EXPECT_TRUE(cache.probe(3));
    EXPECT_FALSE(cache.probe(2));
}

TEST(SetAssocCache, DirtyEvictionReportsWriteback)
{
    SetAssocCache cache(1, 1);
    cache.fill(5, 10, false);
    cache.write(5, 11);
    const auto ev = cache.fill(6, 1, false);
    ASSERT_TRUE(ev.has_value());
    EXPECT_TRUE(ev->dirty);
    EXPECT_EQ(ev->version, 11u);
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(SetAssocCache, CleanEvictionIsSilent)
{
    SetAssocCache cache(1, 1);
    cache.fill(5, 10, false);
    const auto ev = cache.fill(6, 1, false);
    ASSERT_TRUE(ev.has_value());
    EXPECT_FALSE(ev->dirty);
}

TEST(SetAssocCache, WriteMissDoesNotAllocate)
{
    SetAssocCache cache(4, 2);
    EXPECT_FALSE(cache.write(9, 1).hit);
    EXPECT_FALSE(cache.probe(9));
}

TEST(SetAssocCache, RefillOfPresentLineMergesState)
{
    SetAssocCache cache(1, 2);
    cache.fill(1, 5, false);
    cache.write(1, 9);
    const auto ev = cache.fill(1, 7, false);  // raced refill with older version
    EXPECT_FALSE(ev.has_value());
    const auto r = cache.read(1);
    EXPECT_EQ(r.version, 9u);  // keeps the newer version and dirtiness
}

TEST(SetAssocCache, InvalidateDropsLine)
{
    SetAssocCache cache(2, 2);
    cache.fill(3, 1, true);
    const auto ev = cache.invalidate(3);
    ASSERT_TRUE(ev.has_value());
    EXPECT_TRUE(ev->dirty);
    EXPECT_FALSE(cache.probe(3));
    EXPECT_FALSE(cache.invalidate(3).has_value());
}

TEST(SetAssocCache, FlushWritesBackAllDirtyLines)
{
    SetAssocCache cache(4, 4);
    cache.fill(1, 1, true);
    cache.fill(2, 2, false);
    cache.fill(3, 3, true);
    std::unordered_map<LineAddr, std::uint64_t> sink;
    cache.flush([&](LineAddr line, std::uint64_t version) { sink[line] = version; });
    EXPECT_EQ(sink.size(), 2u);
    EXPECT_EQ(sink[1], 1u);
    EXPECT_EQ(sink[3], 3u);
    EXPECT_FALSE(cache.probe(2));
}

TEST(SetAssocCache, HashedIndexSpreadsConflictingLowBits)
{
    // Lines that share low bits collide in a low-bit-indexed cache but
    // spread under hashed indexing.
    SetAssocCache plain(16, 1, ReplacementKind::kLru, false);
    SetAssocCache hashed(16, 1, ReplacementKind::kLru, true);
    int plain_same = 0;
    int hashed_same = 0;
    for (LineAddr l = 0; l < 32; ++l) {
        plain_same += plain.set_index(l * 16) == plain.set_index(0);
        hashed_same += hashed.set_index(l * 16) == hashed.set_index(0);
    }
    EXPECT_EQ(plain_same, 32);
    EXPECT_LT(hashed_same, 8);
}

/** Property: steady-state hit rate tracks capacity/footprint. */
class CacheHitRate : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CacheHitRate, UniformRandomHitRateTracksCapacityRatio)
{
    const std::uint32_t footprint_lines = GetParam();
    SetAssocCache cache(64, 8, ReplacementKind::kLru, true);  // 512 lines
    Rng rng(footprint_lines);
    std::uint64_t hits = 0;
    constexpr int kWarmup = 20'000;
    constexpr int kMeasure = 60'000;
    for (int i = 0; i < kWarmup + kMeasure; ++i) {
        const LineAddr line = rng.next_below(footprint_lines);
        const auto r = cache.read(line);
        if (!r.hit)
            cache.fill(line, 1, false);
        else if (i >= kWarmup)
            ++hits;
    }
    const double measured = static_cast<double>(hits) / kMeasure;
    const double expected =
        std::min(1.0, 512.0 / static_cast<double>(footprint_lines));
    EXPECT_NEAR(measured, expected, 0.12) << "footprint=" << footprint_lines;
}

INSTANTIATE_TEST_SUITE_P(Footprints, CacheHitRate,
                         ::testing::Values(256u, 1024u, 2048u, 4096u));
