#include <gtest/gtest.h>

#include <vector>

#include "morpheus/address_separator.hpp"

using namespace morpheus;

namespace {

/** 48 sets x 2 SMs with uniform capacity. */
AddressSeparator
make_sep(std::uint64_t conv_bytes, std::uint32_t sets, std::uint64_t set_bytes,
         std::uint32_t parts = 10)
{
    std::vector<std::uint64_t> caps(sets, set_bytes);
    return AddressSeparator(conv_bytes, parts, caps, 48);
}

} // namespace

TEST(AddressSeparator, NoSetsMeansNothingExtended)
{
    AddressSeparator sep(5 << 20, 10, {}, 48);
    EXPECT_EQ(sep.extended_bytes(), 0u);
    for (LineAddr l = 0; l < 1000; ++l)
        EXPECT_FALSE(sep.is_extended(l));
}

TEST(AddressSeparator, SplitIsProportionalToCapacity)
{
    // 5 MiB conventional + 5 MiB extended => ~50% of lines extended.
    const auto sep = make_sep(5ULL << 20, 96, (5ULL << 20) / 96);
    std::uint64_t ext = 0;
    constexpr std::uint64_t kLines = 200'000;
    for (LineAddr l = 0; l < kLines; ++l)
        ext += sep.is_extended(l);
    EXPECT_NEAR(static_cast<double>(ext) / kLines, 0.5, 0.01);
    EXPECT_NEAR(sep.extended_fraction(), 0.5, 0.01);
}

TEST(AddressSeparator, SmallExtFractionRoutesFewLines)
{
    const auto sep = make_sep(15ULL << 20, 96, (5ULL << 20) / 96);  // 25% ext
    std::uint64_t ext = 0;
    constexpr std::uint64_t kLines = 200'000;
    for (LineAddr l = 0; l < kLines; ++l)
        ext += sep.is_extended(l);
    EXPECT_NEAR(static_cast<double>(ext) / kLines, 0.25, 0.01);
}

TEST(AddressSeparator, SetOwnershipMatchesPartitionRouting)
{
    // The set serving a line must be owned by the partition that
    // conventional routing delivers the request to (set % parts == p).
    const auto sep = make_sep(5ULL << 20, 960, 6528);
    for (LineAddr l = 0; l < 50'000; ++l) {
        if (!sep.is_extended(l))
            continue;
        const auto ref = sep.set_of(l);
        EXPECT_EQ(ref.global_set % 10, partition_of(l, 10));
    }
}

TEST(AddressSeparator, MappingIsDeterministic)
{
    const auto sep = make_sep(5ULL << 20, 96, 6528);
    for (LineAddr l = 0; l < 1000; ++l) {
        if (!sep.is_extended(l))
            continue;
        const auto a = sep.set_of(l);
        const auto b = sep.set_of(l);
        EXPECT_EQ(a.global_set, b.global_set);
        EXPECT_EQ(a.sm_slot, b.sm_slot);
        EXPECT_EQ(a.local_set, b.local_set);
    }
}

TEST(AddressSeparator, LoadSpreadsAcrossSets)
{
    const auto sep = make_sep(5ULL << 20, 96, 6528);
    std::vector<std::uint32_t> counts(96, 0);
    for (LineAddr l = 0; l < 300'000; ++l) {
        if (sep.is_extended(l))
            ++counts[sep.set_of(l).global_set];
    }
    std::uint64_t total = 0;
    for (auto c : counts)
        total += c;
    const double mean = static_cast<double>(total) / 96.0;
    for (auto c : counts) {
        EXPECT_GT(c, mean * 0.75);
        EXPECT_LT(c, mean * 1.25);
    }
}

TEST(AddressSeparator, WeightedCapacityGetsWeightedTraffic)
{
    // Half the sets have double capacity: they should receive ~2x lines.
    std::vector<std::uint64_t> caps;
    for (int i = 0; i < 96; ++i)
        caps.push_back(i < 48 ? 8192 : 4096);
    AddressSeparator sep(5ULL << 20, 10, caps, 48);
    std::uint64_t big = 0;
    std::uint64_t small = 0;
    for (LineAddr l = 0; l < 400'000; ++l) {
        if (!sep.is_extended(l))
            continue;
        if (sep.set_of(l).global_set < 48)
            ++big;
        else
            ++small;
    }
    EXPECT_NEAR(static_cast<double>(big) / static_cast<double>(small), 2.0, 0.25);
}

TEST(AddressSeparator, SmSlotAndLocalSetDecomposition)
{
    const auto sep = make_sep(5ULL << 20, 96, 6528);  // 2 SMs x 48 sets
    for (LineAddr l = 0; l < 20'000; ++l) {
        if (!sep.is_extended(l))
            continue;
        const auto ref = sep.set_of(l);
        EXPECT_EQ(ref.global_set, ref.sm_slot * 48 + ref.local_set);
        EXPECT_LT(ref.sm_slot, 2u);
        EXPECT_LT(ref.local_set, 48u);
    }
}
