#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>

#include "harness/sweep_engine.hpp"
#include "harness/system_config.hpp"

using namespace morpheus;

namespace {

/** A small but non-trivial job mix spanning baseline and Morpheus runs. */
std::vector<SweepJob>
job_mix()
{
    std::vector<SweepJob> jobs;
    WorkloadParams params;
    params.name = "sweep-test";
    params.total_mem_instrs = 4000;
    params.per_warp_ws_bytes = 64 * 1024;
    params.write_frac = 0.2;

    for (std::uint32_t sms : {8u, 16u}) {
        SystemSetup setup;
        setup.compute_sms = sms;
        jobs.push_back(SweepJob{setup, params, "bl-" + std::to_string(sms)});
    }
    for (std::uint32_t cache : {4u, 8u}) {
        SystemSetup setup;
        setup.compute_sms = 8;
        setup.morpheus.enabled = true;
        setup.morpheus.cache_sms = cache;
        setup.morpheus.prediction = PredictionMode::kBloom;
        jobs.push_back(SweepJob{setup, params, "morpheus-" + std::to_string(cache)});
    }
    return jobs;
}

std::vector<Labeled<RunResult>>
run_with_workers(unsigned workers)
{
    SweepEngine engine(workers);
    for (auto &job : job_mix())
        engine.add(job);
    return engine.run_all();
}

} // namespace

TEST(SweepEngine, ParallelOutputIdenticalToSerial)
{
    // The acceptance property: N worker threads produce results that are
    // bit-identical, job for job, to a serial run — the simulator shares
    // no mutable state between runs and results collect in submission
    // order.
    const auto serial = run_with_workers(1);
    for (unsigned workers : {2u, 4u, 8u}) {
        const auto parallel = run_with_workers(workers);
        ASSERT_EQ(serial.size(), parallel.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(serial[i].label, parallel[i].label);
            EXPECT_TRUE(run_results_identical(serial[i].value, parallel[i].value))
                << "job " << i << " (" << serial[i].label << ") diverged with " << workers
                << " workers";
        }
    }
}

TEST(SweepEngine, ResultsComeBackInSubmissionOrder)
{
    ParallelRunner<int> pool(4);
    // Tasks complete intentionally out of order (later submissions finish
    // first); collection must still follow submission order.
    for (int i = 0; i < 12; ++i) {
        pool.submit(std::to_string(i), [i] {
            std::this_thread::sleep_for(std::chrono::milliseconds((12 - i) % 4));
            return i;
        });
    }
    const auto results = pool.run_all();
    ASSERT_EQ(results.size(), 12u);
    for (int i = 0; i < 12; ++i) {
        EXPECT_EQ(results[i].label, std::to_string(i));
        EXPECT_EQ(results[i].value, i);
    }
}

TEST(SweepEngine, UsesMultipleWorkerThreads)
{
    ParallelRunner<int> pool(4);
    std::atomic<int> in_flight{0};
    std::atomic<int> peak{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit("t", [&] {
            const int now = ++in_flight;
            int expected = peak.load();
            while (now > expected && !peak.compare_exchange_weak(expected, now)) {
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            --in_flight;
            return 0;
        });
    }
    pool.run_all();
    EXPECT_GT(peak.load(), 1) << "tasks never overlapped on a multi-worker pool";
}

TEST(SweepEngine, TaskExceptionsPropagateDeterministically)
{
    ParallelRunner<int> pool(4);
    pool.submit("ok", [] { return 1; });
    pool.submit("boom-a", []() -> int { throw std::runtime_error("a"); });
    pool.submit("boom-b", []() -> int { throw std::runtime_error("b"); });
    // The lowest-submission-index failure wins, regardless of which
    // worker hit its exception first.
    try {
        pool.run_all();
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "a");
    }
}

TEST(SweepEngine, EmptySweepIsFine)
{
    SweepEngine engine(4);
    EXPECT_TRUE(engine.run_all().empty());
}

TEST(SweepEngine, DefaultJobsHonorsEnvironment)
{
    ASSERT_EQ(setenv("MORPHEUS_JOBS", "3", 1), 0);
    EXPECT_EQ(default_sweep_jobs(), 3u);
    ASSERT_EQ(unsetenv("MORPHEUS_JOBS"), 0);
    EXPECT_GE(default_sweep_jobs(), 1u);
}

TEST(SweepEngine, LabelsSurviveTheRoundTrip)
{
    SweepEngine engine(2);
    WorkloadParams params;
    params.name = "labels";
    params.total_mem_instrs = 100;
    SystemSetup setup;
    setup.compute_sms = 2;
    engine.add(setup, params, "first");
    engine.add(setup, params, "second");
    const auto results = engine.run_all();
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].label, "first");
    EXPECT_EQ(results[1].label, "second");
}
