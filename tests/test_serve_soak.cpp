/**
 * @file
 * Multi-tenant torture tests for the serving layer (serve/scheduler.hpp,
 * serve/serve.hpp, serve/listener.hpp). The CI TSan job runs this
 * binary: every property here must hold under real thread interleaving.
 *
 *  - SweepScheduler: admission cap honored exactly, waiters woken in
 *    priority order, bounded queue rejects busy;
 *  - ConcurrencyGate: at most N simulations in flight across sweeps;
 *  - coalescing: duplicate in-flight requests ride the leader's report;
 *  - soak: 32 client threads × mixed hit/miss/duplicate keys — the
 *    simulation count equals the number of unique configurations, every
 *    response is byte-identical to a fresh serial run, and the peak
 *    admitted concurrency never exceeds the cap;
 *  - the same soak through a live TCP ServerLoop (real sockets).
 */
#include <gtest/gtest.h>

#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "harness/json.hpp"
#include "harness/sweep_engine.hpp"
#include "serve/listener.hpp"
#include "serve/scheduler.hpp"
#include "serve/serve.hpp"

using namespace morpheus;

namespace {

class TempCacheDir
{
  public:
    explicit TempCacheDir(const char *tag)
        : path_(std::string(::testing::TempDir()) + "morpheus_soak_" + tag)
    {
        std::filesystem::remove_all(path_);
    }
    ~TempCacheDir() { std::filesystem::remove_all(path_); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::string
run_request(int config)
{
    return R"({"op": "run", "app": "kmeans", "compute_sms": )" +
           std::to_string(4 + 2 * config) + "}";
}

/** The embedded report field of an ok response (empty string + test
 *  failure otherwise). */
std::string
report_of(const std::string &response)
{
    JsonValue v;
    std::string error;
    EXPECT_TRUE(parse_json_value(response, v, error)) << error << ": " << response;
    EXPECT_EQ(v.string_or("status", ""), "ok") << response;
    const JsonValue *r = v.get("report");
    EXPECT_NE(r, nullptr) << response;
    return r ? r->string : std::string();
}

double
stat_field(ServeHandler &handler, const char *field)
{
    bool shutdown = false;
    JsonValue v;
    std::string error;
    EXPECT_TRUE(
        parse_json_value(handler.handle_line(R"({"op": "stats"})", shutdown), v, error))
        << error;
    return v.number_or(field, -1);
}

} // namespace

// ---------------------------------------------------------------------------
// SweepScheduler

TEST(SweepScheduler_, UnboundedAdmitsImmediately)
{
    SweepScheduler scheduler(0);
    std::vector<AdmissionSlot> slots;
    for (int i = 0; i < 32; ++i) {
        slots.push_back(scheduler.acquire(0, /*no_wait=*/true));
        EXPECT_TRUE(slots.back().admitted());
        EXPECT_FALSE(slots.back().was_queued());
    }
    EXPECT_EQ(scheduler.stats().busy_rejected, 0u);
}

TEST(SweepScheduler_, CapIsExactAndNoWaitBouncesAtCap)
{
    SweepScheduler scheduler(2);
    AdmissionSlot a = scheduler.acquire(0, true);
    AdmissionSlot b = scheduler.acquire(0, true);
    ASSERT_TRUE(a.admitted());
    ASSERT_TRUE(b.admitted());

    AdmissionSlot c = scheduler.acquire(0, true);
    EXPECT_FALSE(c.admitted());
    EXPECT_EQ(scheduler.stats().busy_rejected, 1u);
    EXPECT_EQ(scheduler.stats().inflight, 2u);
    EXPECT_EQ(scheduler.stats().peak_inflight, 2u);

    a.release();
    AdmissionSlot d = scheduler.acquire(0, true);
    EXPECT_TRUE(d.admitted());
}

TEST(SweepScheduler_, WaitersAdmitInPriorityOrder)
{
    SweepScheduler scheduler(1);
    AdmissionSlot held = scheduler.acquire(0, true);
    ASSERT_TRUE(held.admitted());

    std::mutex mu;
    std::vector<int> admit_order;
    std::vector<std::thread> waiters;
    for (const int priority : {1, 5, 3}) {
        waiters.emplace_back([&, priority] {
            // The slot is held until the lambda returns, so the order
            // recorded under the mutex is the true admission order.
            AdmissionSlot slot = scheduler.acquire(priority, false);
            EXPECT_TRUE(slot.admitted());
            EXPECT_TRUE(slot.was_queued());
            std::lock_guard<std::mutex> lock(mu);
            admit_order.push_back(priority);
        });
        // Enqueue strictly one at a time; priority — not arrival — must
        // decide the admission order below.
        while (scheduler.stats().queue_depth < waiters.size())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    held.release();
    for (auto &t : waiters)
        t.join();
    EXPECT_EQ(admit_order, (std::vector<int>{5, 3, 1}));
    EXPECT_EQ(scheduler.stats().queued, 3u);
    EXPECT_EQ(scheduler.stats().peak_inflight, 1u);
}

TEST(SweepScheduler_, FullQueueRejectsBusy)
{
    SweepScheduler scheduler(1, /*max_queue=*/1);
    AdmissionSlot held = scheduler.acquire(0, true);
    ASSERT_TRUE(held.admitted());

    std::thread waiter([&] {
        AdmissionSlot slot = scheduler.acquire(0, false);
        EXPECT_TRUE(slot.admitted());
    });
    while (scheduler.stats().queue_depth < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    AdmissionSlot rejected = scheduler.acquire(0, false);
    EXPECT_FALSE(rejected.admitted());
    EXPECT_EQ(scheduler.stats().busy_rejected, 1u);

    held.release();
    waiter.join();
}

// ---------------------------------------------------------------------------
// ConcurrencyGate

TEST(ConcurrencyGate_, BoundsConcurrentHoldersExactly)
{
    ConcurrencyGate gate(2);
    std::atomic<int> holding{0};
    std::atomic<int> overlap_max{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&] {
            for (int r = 0; r < 4; ++r) {
                gate.acquire();
                const int now = holding.fetch_add(1) + 1;
                int seen = overlap_max.load();
                while (now > seen && !overlap_max.compare_exchange_weak(seen, now)) {
                }
                std::this_thread::sleep_for(std::chrono::milliseconds(2));
                holding.fetch_sub(1);
                gate.release();
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_LE(overlap_max.load(), 2);
    EXPECT_EQ(gate.peak(), 2u); // 8 threads × 4 rounds certainly collided
    EXPECT_EQ(holding.load(), 0);
}

// ---------------------------------------------------------------------------
// Coalescing and busy responses through the handler

TEST(ServeScheduling, DuplicateInflightRequestCoalescesOntoLeader)
{
    TempCacheDir dir("coalesce");
    ServeOptions options;
    options.cache_dir = dir.path();
    options.max_inflight_sweeps = 4;
    ServeHandler handler(options);
    ASSERT_TRUE(handler.cache_ok()) << handler.cache_error();

    const std::string request = run_request(0);
    std::string leader_response;
    std::thread leader([&] {
        bool shutdown = false;
        leader_response = handler.handle_line(request, shutdown);
    });
    // The leader registers its coalesce slot before admission, so once
    // the scheduler counts it in flight any duplicate must coalesce.
    while (stat_field(handler, "inflight") < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    bool shutdown = false;
    const std::string follower_response = handler.handle_line(request, shutdown);
    leader.join();

    EXPECT_EQ(handler.cache().stats().misses.load(), 1u);
    EXPECT_NE(follower_response.find("\"coalesced\": true"), std::string::npos)
        << follower_response;
    EXPECT_EQ(report_of(follower_response), report_of(leader_response));
    EXPECT_EQ(stat_field(handler, "coalesced"), 1);
}

TEST(ServeScheduling, NoWaitRequestGetsStructuredBusyAtCapacity)
{
    TempCacheDir dir("busy");
    ServeOptions options;
    options.cache_dir = dir.path();
    options.max_inflight_sweeps = 1;
    ServeHandler handler(options);
    ASSERT_TRUE(handler.cache_ok()) << handler.cache_error();

    std::thread occupant([&] {
        bool shutdown = false;
        handler.handle_line(run_request(0), shutdown);
    });
    while (stat_field(handler, "inflight") < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // A *different* configuration (same key would coalesce, not queue).
    bool shutdown = false;
    const std::string response =
        handler.handle_line(R"({"op": "run", "app": "kmeans", "compute_sms": 30, )"
                            R"("no_wait": true})",
                            shutdown);
    occupant.join();

    JsonValue v;
    std::string error;
    ASSERT_TRUE(parse_json_value(response, v, error)) << error;
    EXPECT_EQ(v.string_or("status", ""), "busy") << response;
    EXPECT_EQ(v.string_or("code", ""), "busy");
    EXPECT_EQ(handler.scheduler().stats().busy_rejected, 1u);
}

// ---------------------------------------------------------------------------
// Soak: 32 threads, mixed hit/miss/duplicate keys

TEST(ServeSoak, MixedKeySoakCostsOneSimulationPerUniqueKey)
{
    TempCacheDir dir("soak");
    ServeOptions options;
    options.cache_dir = dir.path();
    options.max_inflight_sweeps = 4;
    ServeHandler handler(options);
    ASSERT_TRUE(handler.cache_ok()) << handler.cache_error();

    constexpr int kThreads = 32, kRounds = 3, kConfigs = 4;
    std::vector<std::vector<std::string>> responses(
        kThreads, std::vector<std::string>(kRounds));
    {
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([&, t] {
                for (int r = 0; r < kRounds; ++r) {
                    // Every thread hammers all configs, phase-shifted:
                    // duplicates in flight, hits after, misses first.
                    bool shutdown = false;
                    responses[static_cast<std::size_t>(t)][static_cast<std::size_t>(r)] =
                        handler.handle_line(run_request((t + r) % kConfigs), shutdown);
                    EXPECT_FALSE(shutdown);
                }
            });
        }
        for (auto &th : threads)
            th.join();
    }

    // Exactly one simulation per unique configuration — everything else
    // was a cache hit or a coalesced ride-along.
    EXPECT_EQ(handler.cache().stats().misses.load(),
              static_cast<std::uint64_t>(kConfigs));

    // The admission cap held at every instant.
    const SchedulerStats sched = handler.scheduler().stats();
    EXPECT_LE(sched.peak_inflight, 4u);
    EXPECT_EQ(sched.inflight, 0u);
    EXPECT_EQ(sched.busy_rejected, 0u); // nothing used no_wait

    // Byte-identity: every response's report equals a fresh serial run
    // of the same configuration in an unrelated handler.
    std::map<int, std::string> reference;
    TempCacheDir ref_dir("soak_ref");
    ServeHandler serial(ref_dir.path());
    for (int c = 0; c < kConfigs; ++c) {
        bool shutdown = false;
        reference[c] = report_of(serial.handle_line(run_request(c), shutdown));
        ASSERT_FALSE(reference[c].empty());
    }
    for (int t = 0; t < kThreads; ++t)
        for (int r = 0; r < kRounds; ++r)
            EXPECT_EQ(report_of(responses[static_cast<std::size_t>(t)]
                                         [static_cast<std::size_t>(r)]),
                      reference[(t + r) % kConfigs])
                << "thread " << t << " round " << r;
}

// ---------------------------------------------------------------------------
// The same traffic through a live TCP daemon

namespace {

int
connect_loopback(std::uint16_t port)
{
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    if (::getaddrinfo("127.0.0.1", std::to_string(port).c_str(), &hints, &res) != 0 ||
        !res)
        return -1;
    const int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
    const bool ok = fd >= 0 && ::connect(fd, res->ai_addr, res->ai_addrlen) == 0;
    ::freeaddrinfo(res);
    if (!ok) {
        if (fd >= 0)
            ::close(fd);
        return -1;
    }
    return fd;
}

bool
send_all(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
recv_response_line(int fd, std::string &buf, std::string &out)
{
    while (true) {
        const std::size_t pos = buf.find('\n');
        if (pos != std::string::npos) {
            out = buf.substr(0, pos);
            buf.erase(0, pos + 1);
            return true;
        }
        char chunk[4096];
        const ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n <= 0)
            return false;
        buf.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace

TEST(ServeSoak, TcpDaemonServesConcurrentClientsByteIdentically)
{
    TempCacheDir dir("tcp");
    ServeOptions options;
    options.cache_dir = dir.path();
    options.max_inflight_sweeps = 4;
    ServeHandler handler(options);
    ASSERT_TRUE(handler.cache_ok()) << handler.cache_error();

    ServerLoop::Options loop_opts;
    loop_opts.tcp_spec = "127.0.0.1:0"; // ephemeral port — parallel-safe
    ServerLoop loop(handler, loop_opts);
    std::string error;
    ASSERT_TRUE(loop.start(error)) << error;
    const std::uint16_t port = loop.tcp_port();
    ASSERT_NE(port, 0);
    std::thread server([&] { loop.run(); });

    constexpr int kClients = 8, kRounds = 2, kConfigs = 2;
    std::vector<std::string> reports(
        static_cast<std::size_t>(kClients * kRounds));
    {
        std::vector<std::thread> clients;
        for (int c = 0; c < kClients; ++c) {
            clients.emplace_back([&, c] {
                // One persistent connection per client, pipelining its
                // rounds — the daemon must keep per-connection framing
                // straight under concurrent load.
                const int fd = connect_loopback(port);
                ASSERT_GE(fd, 0);
                std::string buf, line;
                for (int r = 0; r < kRounds; ++r) {
                    ASSERT_TRUE(send_all(fd, run_request((c + r) % kConfigs) + "\n"));
                    ASSERT_TRUE(recv_response_line(fd, buf, line));
                    reports[static_cast<std::size_t>(c * kRounds + r)] =
                        report_of(line);
                }
                ::close(fd);
            });
        }
        for (auto &th : clients)
            th.join();
    }

    EXPECT_EQ(handler.cache().stats().misses.load(),
              static_cast<std::uint64_t>(kConfigs));
    EXPECT_LE(handler.scheduler().stats().peak_inflight, 4u);

    TempCacheDir ref_dir("tcp_ref");
    ServeHandler serial(ref_dir.path());
    for (int c = 0; c < kClients; ++c)
        for (int r = 0; r < kRounds; ++r) {
            bool shutdown = false;
            EXPECT_EQ(reports[static_cast<std::size_t>(c * kRounds + r)],
                      report_of(serial.handle_line(run_request((c + r) % kConfigs),
                                                   shutdown)))
                << "client " << c << " round " << r;
        }

    loop.stop();
    server.join();
}
