#!/bin/sh
# CLI edge-case drill for the trace tool (registered as the
# `trace_cli_smoke` ctest entry; $1 = directory with the built binaries).
#
#  - `downsample --keep 0` is a legal edge: every stream survives with
#    zero records, stat reports them, verify stays byte-canonical, and
#    replay terminates with zero instructions.
#  - `convert` rejects malformed text with a line-numbered error and
#    round-trips well-formed text through verify/stat.
set -eu

BUILD="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
export MORPHEUS_WORK_SCALE=0.02

# --- downsample --keep 0 ----------------------------------------------------
"$BUILD/morpheus_trace" record kmeans --sms 4 --warps 4 --mem-instrs 2000 \
    --out "$TMP/full.mtrc" > /dev/null
"$BUILD/morpheus_trace" downsample "$TMP/full.mtrc" "$TMP/empty.mtrc" --keep 0 \
    > /dev/null
"$BUILD/morpheus_trace" verify "$TMP/empty.mtrc" > /dev/null
"$BUILD/morpheus_trace" stat "$TMP/empty.mtrc" > "$TMP/stat.txt"
grep -Eq 'streams +16' "$TMP/stat.txt"
grep -Eq 'empty streams +16' "$TMP/stat.txt"
grep -Eq '^records +0' "$TMP/stat.txt"
# Replay of an all-empty trace must be well-defined: warps retire
# immediately and the run terminates cleanly.
"$BUILD/bench_trace_replay" --trace "$TMP/empty.mtrc" --jobs 1 > /dev/null

# --- converter rejects malformed input with line numbers --------------------
printf 'warp 0 LDG.E addrs 0xZZ\n' > "$TMP/bad.trace"
if "$BUILD/morpheus_trace" convert "$TMP/bad.trace" "$TMP/bad.mtrc" \
    2> "$TMP/err.txt"; then
    echo "convert accepted a malformed address" >&2
    exit 1
fi
grep -q 'line 1' "$TMP/err.txt"

printf '# nothing but comments\n\n' > "$TMP/none.trace"
if "$BUILD/morpheus_trace" convert "$TMP/none.trace" "$TMP/none.mtrc" \
    2> /dev/null; then
    echo "convert accepted an instruction-free file" >&2
    exit 1
fi

# --- converter round-trip ----------------------------------------------------
{
    printf 'kernel smoke\n'
    printf 'cta 0,0,0 warp 0 PC 0x80 LDG.E addrs 0x100 0x200 0x0\n'
    printf 'cta 0,0,0 warp 0 LDS addrs 0x0\n'
    printf 'cta 0,0,0 warp 0 PC 0x90 STG.E addrs 0x100\n'
    printf 'cta 1,0,0 warp 2 RED.ADD addrs 0x4000\n'
} > "$TMP/ok.trace"
"$BUILD/morpheus_trace" convert "$TMP/ok.trace" "$TMP/ok.mtrc" --sms 2 > /dev/null
"$BUILD/morpheus_trace" verify "$TMP/ok.mtrc" > /dev/null
"$BUILD/morpheus_trace" stat "$TMP/ok.mtrc" > "$TMP/okstat.txt"
grep -Eq 'format version +2' "$TMP/okstat.txt"
grep -Eq 'workload +smoke' "$TMP/okstat.txt"
"$BUILD/bench_trace_replay" --trace "$TMP/ok.mtrc" --jobs 1 > /dev/null

echo "trace_cli_smoke: OK"
