#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "harness/fault_plan.hpp"
#include "harness/report.hpp"
#include "harness/sweep_engine.hpp"
#include "harness/sweep_journal.hpp"

using namespace morpheus;

namespace {

WorkloadParams
tiny_app(const char *name)
{
    WorkloadParams p;
    p.name = name;
    p.pattern = PatternKind::kPrivateLoop;
    p.alu_per_mem = 4;
    p.shared_ws_bytes = 1 << 20;
    p.per_warp_ws_bytes = 4 * 1024;
    p.warps_per_sm = 8;
    p.total_mem_instrs = 8'000;
    return p;
}

/** Four small jobs with distinct shapes (labels j0..j3). */
void
queue_jobs(SweepEngine &engine)
{
    for (std::uint32_t i = 0; i < 4; ++i) {
        SystemSetup setup;
        setup.compute_sms = 4 + 2 * i;
        std::string label = "j";
        label += std::to_string(i);
        engine.add(setup, tiny_app(label.c_str()), label);
    }
}

FaultPlan
plan(const std::string &spec)
{
    FaultPlan p;
    std::string error;
    EXPECT_TRUE(parse_fault_plan(spec, p, error)) << error;
    return p;
}

std::string
tmp_journal(const char *tag)
{
    return std::string(::testing::TempDir()) + "morpheus_journal_" + tag + ".mjrn";
}

class TempFile
{
  public:
    explicit TempFile(std::string path) : path_(std::move(path)) { std::remove(path_.c_str()); }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

} // namespace

// ---------------------------------------------------------------------------
// FaultPlan grammar

TEST(FaultPlan, ParsesNoneAndEmpty)
{
    FaultPlan p;
    std::string error;
    ASSERT_TRUE(parse_fault_plan("none", p, error));
    EXPECT_FALSE(p.active());
    ASSERT_TRUE(parse_fault_plan("", p, error));
    EXPECT_FALSE(p.active());
}

TEST(FaultPlan, ParsesThrowAtRun)
{
    const FaultPlan p = plan("throw@run=2,cycle=5000,times=3");
    EXPECT_EQ(p.action, RunFault::kThrow);
    EXPECT_FALSE(p.by_seed);
    EXPECT_EQ(p.run_index, 2u);
    EXPECT_EQ(p.cycle, 5'000u);
    EXPECT_EQ(p.times, 3u);
    EXPECT_EQ(p.resolve_index(10), 2u);
    EXPECT_EQ(p.resolve_index(2), 0u); // modulo the job count
}

TEST(FaultPlan, ParsesHangAndAbort)
{
    EXPECT_EQ(plan("hang@run=0").action, RunFault::kHang);
    EXPECT_EQ(plan("abort@run=1").action, RunFault::kAbort);
    EXPECT_EQ(plan("hang@run=0").times, 1u);
    EXPECT_EQ(plan("hang@run=0").cycle, 0u);
}

TEST(FaultPlan, SeedVariantIsDeterministic)
{
    const FaultPlan p = plan("throw@seed=42");
    EXPECT_TRUE(p.by_seed);
    const std::size_t idx = p.resolve_index(7);
    EXPECT_LT(idx, 7u);
    EXPECT_EQ(idx, plan("throw@seed=42").resolve_index(7));
    // Different seeds spread over different indices (not a proof, a smoke
    // check over enough seeds to make collision-on-all astronomically
    // unlikely).
    bool differs = false;
    for (std::uint64_t s = 0; s < 32 && !differs; ++s)
        differs = plan("throw@seed=" + std::to_string(s)).resolve_index(7) != idx;
    EXPECT_TRUE(differs);
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    FaultPlan p;
    std::string error;
    EXPECT_FALSE(parse_fault_plan("explode@run=1", p, error));
    EXPECT_FALSE(parse_fault_plan("throw", p, error));
    EXPECT_FALSE(parse_fault_plan("throw@", p, error));
    EXPECT_FALSE(parse_fault_plan("throw@cycle=5", p, error)); // no target
    EXPECT_FALSE(parse_fault_plan("throw@run=1,seed=2", p, error));
    EXPECT_FALSE(parse_fault_plan("throw@run=x", p, error));
    EXPECT_FALSE(parse_fault_plan("throw@run=1,times=0", p, error));
    EXPECT_FALSE(parse_fault_plan("throw@run=1,bogus=2", p, error));
}

// ---------------------------------------------------------------------------
// Fault-tolerant SweepEngine

TEST(FaultInjection, TolerantSweepDegradesFailedJob)
{
    SweepEngine engine(2);
    RunReport report("drill");
    engine.set_report(&report);
    SweepConfig cfg;
    cfg.fault = plan("throw@run=2,times=99"); // exceeds any retry budget
    cfg.retries = 1;
    cfg.tolerant = true;
    engine.set_config(cfg);
    queue_jobs(engine);

    const auto results = engine.run_all(); // must not throw
    ASSERT_EQ(results.size(), 4u);
    ASSERT_EQ(report.entries().size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(results[i].label, "j" + std::to_string(i));
        EXPECT_EQ(report.entries()[i].label, results[i].label);
    }
    EXPECT_TRUE(report.has_failures());
    EXPECT_FALSE(report.entries()[2].ok());
    EXPECT_NE(report.entries()[2].error.find("injected"), std::string::npos);
    EXPECT_EQ(results[2].value.cycles, 0u); // positional slot holds a default
    for (std::size_t i : {0u, 1u, 3u}) {
        EXPECT_TRUE(report.entries()[i].ok());
        EXPECT_GT(results[i].value.cycles, 0u);
    }
}

TEST(FaultInjection, NonTolerantSweepRethrows)
{
    SweepEngine engine(2);
    SweepConfig cfg;
    cfg.fault = plan("throw@run=1,times=99");
    cfg.retries = 0;
    engine.set_config(cfg);
    queue_jobs(engine);
    EXPECT_THROW(engine.run_all(), InjectedFault);
}

TEST(FaultInjection, RetryRecoveryIsByteIdentical)
{
    SweepEngine clean(2);
    queue_jobs(clean);
    const auto expect = clean.run_all();

    SweepEngine faulty(2);
    SweepConfig cfg;
    cfg.fault = plan("throw@run=1,times=1"); // one failed attempt, then fine
    cfg.retries = 1;
    faulty.set_config(cfg);
    queue_jobs(faulty);
    const auto got = faulty.run_all();

    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_TRUE(run_results_identical(got[i].value, expect[i].value)) << "job " << i;
}

TEST(FaultInjection, InRunFaultRecoveryIsByteIdentical)
{
    SweepEngine clean(2);
    queue_jobs(clean);
    const auto expect = clean.run_all();

    SweepEngine faulty(2);
    SweepConfig cfg;
    cfg.fault = plan("throw@run=3,cycle=2000,times=1"); // dies mid-simulation
    cfg.retries = 1;
    faulty.set_config(cfg);
    queue_jobs(faulty);
    const auto got = faulty.run_all();

    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_TRUE(run_results_identical(got[i].value, expect[i].value)) << "job " << i;
}

TEST(FaultInjection, WatchdogRecoversHangingJob)
{
    SweepEngine clean(2);
    queue_jobs(clean);
    const auto expect = clean.run_all();

    SweepEngine faulty(2);
    SweepConfig cfg;
    cfg.fault = plan("hang@run=0,times=1");
    cfg.timeout_ms = 200;
    cfg.retries = 1;
    faulty.set_config(cfg);
    queue_jobs(faulty);
    const auto got = faulty.run_all(); // watchdog cancels the hang; retry succeeds

    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_TRUE(run_results_identical(got[i].value, expect[i].value)) << "job " << i;
}

TEST(FaultInjection, WatchdogTimesOutPermanentHang)
{
    SweepEngine engine(2);
    RunReport report("drill");
    engine.set_report(&report);
    SweepConfig cfg;
    cfg.fault = plan("hang@run=0,times=99");
    cfg.timeout_ms = 150;
    cfg.retries = 0;
    cfg.tolerant = true;
    engine.set_config(cfg);
    queue_jobs(engine);

    const auto results = engine.run_all();
    ASSERT_EQ(results.size(), 4u);
    EXPECT_FALSE(report.entries()[0].ok());
    EXPECT_NE(report.entries()[0].error.find("timed out"), std::string::npos)
        << report.entries()[0].error;
    for (std::size_t i : {1u, 2u, 3u})
        EXPECT_TRUE(report.entries()[i].ok());
}

TEST(FaultInjection, JobsOneVsManyIdenticalUnderFaults)
{
    auto run_with_jobs = [](unsigned jobs) {
        SweepEngine engine(jobs);
        RunReport report("drill");
        engine.set_report(&report);
        SweepConfig cfg;
        cfg.fault = plan("throw@run=2,times=99");
        cfg.retries = 1;
        cfg.tolerant = true;
        engine.set_config(cfg);
        queue_jobs(engine);
        engine.run_all();
        return report;
    };
    const RunReport serial = run_with_jobs(1);
    const RunReport parallel = run_with_jobs(4);
    EXPECT_TRUE(reports_identical(serial, parallel));
}

// ---------------------------------------------------------------------------
// Journal + resume

TEST(Journal, RoundTripAndResumeSkipsCompletedJobs)
{
    TempFile journal(tmp_journal("resume"));

    SweepEngine first(2);
    SweepConfig cfg;
    cfg.journal_path = journal.path();
    first.set_config(cfg);
    queue_jobs(first);
    const auto expect = first.run_all();

    std::vector<SweepJournalEntry> entries;
    std::string error;
    ASSERT_TRUE(load_sweep_journal(journal.path(), entries, error)) << error;
    ASSERT_EQ(entries.size(), 4u);

    // Resume with a poison fault plan that would sink EVERY job it
    // actually executes: success proves the journal satisfied them all.
    SweepEngine resumed(2);
    SweepConfig cfg2;
    cfg2.journal_path = journal.path();
    cfg2.resume = true;
    cfg2.fault = plan("throw@run=0,times=99");
    cfg2.retries = 0;
    resumed.set_config(cfg2);
    queue_jobs(resumed);
    const auto got = resumed.run_all(); // non-tolerant: would throw if any job ran

    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].label, expect[i].label);
        EXPECT_TRUE(run_results_identical(got[i].value, expect[i].value)) << "job " << i;
    }
}

TEST(Journal, PartialJournalRunsOnlyMissingJobs)
{
    TempFile journal(tmp_journal("partial"));

    SweepEngine first(2);
    SweepConfig cfg;
    cfg.journal_path = journal.path();
    first.set_config(cfg);
    queue_jobs(first);
    const auto expect = first.run_all();

    // Simulate a crash after two completed jobs: drop journal lines.
    std::vector<SweepJournalEntry> entries;
    std::string error;
    ASSERT_TRUE(load_sweep_journal(journal.path(), entries, error));
    ASSERT_EQ(entries.size(), 4u);
    {
        std::ifstream in(journal.path());
        std::string line, kept;
        int n = 0;
        while (std::getline(in, line) && n < 2) {
            kept += line + "\n";
            ++n;
        }
        std::ofstream out(journal.path(), std::ios::trunc);
        out << kept;
    }

    SweepEngine resumed(2);
    SweepConfig cfg2;
    cfg2.journal_path = journal.path();
    cfg2.resume = true;
    resumed.set_config(cfg2);
    queue_jobs(resumed);
    const auto got = resumed.run_all();

    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_TRUE(run_results_identical(got[i].value, expect[i].value)) << "job " << i;

    // The journal now holds the re-run jobs again (appended).
    ASSERT_TRUE(load_sweep_journal(journal.path(), entries, error));
    EXPECT_EQ(entries.size(), 4u);
}

TEST(Journal, TornTailLineIsDropped)
{
    TempFile journal(tmp_journal("torn"));

    SweepEngine engine(1);
    SweepConfig cfg;
    cfg.journal_path = journal.path();
    engine.set_config(cfg);
    queue_jobs(engine);
    engine.run_all();

    // A SIGKILL mid-write leaves an unterminated or garbled tail.
    {
        std::ofstream out(journal.path(), std::ios::app);
        out << "mjrn1 4 6a34 deadbee"; // no newline, odd hex
    }
    std::vector<SweepJournalEntry> entries;
    std::string error;
    ASSERT_TRUE(load_sweep_journal(journal.path(), entries, error));
    EXPECT_EQ(entries.size(), 4u);

    // Garbage in the middle ends parsing at the garbage, keeping the
    // prefix (journals are append-only; anything after corruption is
    // suspect).
    {
        std::ofstream out(journal.path(), std::ios::trunc);
        out << "mjrn1 0 6a30 nothex\n";
    }
    ASSERT_TRUE(load_sweep_journal(journal.path(), entries, error));
    EXPECT_TRUE(entries.empty());
}

TEST(Journal, MissingFileIsEmptyJournal)
{
    std::vector<SweepJournalEntry> entries;
    std::string error;
    ASSERT_TRUE(load_sweep_journal(tmp_journal("never_written"), entries, error));
    EXPECT_TRUE(entries.empty());
}

TEST(Journal, StaleJournalFromDifferentSweepIsIgnored)
{
    TempFile journal(tmp_journal("stale"));

    SweepEngine first(1);
    SweepConfig cfg;
    cfg.journal_path = journal.path();
    first.set_config(cfg);
    queue_jobs(first); // labels j0..j3
    first.run_all();

    // A different sweep (different labels) resuming against this journal
    // must ignore every entry and recompute.
    SweepEngine other(1);
    RunReport report("other");
    other.set_report(&report);
    SweepConfig cfg2;
    cfg2.journal_path = journal.path();
    cfg2.resume = true;
    cfg2.tolerant = true;
    other.set_config(cfg2);
    SystemSetup setup;
    setup.compute_sms = 4;
    other.add(setup, tiny_app("different"), "different-label");
    const auto got = other.run_all();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_GT(got[0].value.cycles, 0u); // actually ran
}

// ---------------------------------------------------------------------------
// ParallelRunner exception safety (the pool the engine is built on)

TEST(ParallelRunnerFaults, OutcomesCaptureErrorsWithoutDeadlock)
{
    ParallelRunner<int> pool(4);
    for (int i = 0; i < 8; ++i) {
        pool.submit(std::string("t") += std::to_string(i), [i]() -> int {
            if (i % 3 == 1)
                throw std::runtime_error("boom " + std::to_string(i));
            return i * 10;
        });
    }
    const auto outcomes = pool.run_all_outcomes(); // must return, not hang
    ASSERT_EQ(outcomes.size(), 8u);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(outcomes[i].label, std::string("t") += std::to_string(i));
        if (i % 3 == 1) {
            EXPECT_FALSE(outcomes[i].ok());
            ASSERT_TRUE(outcomes[i].error != nullptr);
        } else {
            ASSERT_TRUE(outcomes[i].ok());
            EXPECT_EQ(*outcomes[i].value, i * 10);
        }
    }
}

TEST(ParallelRunnerFaults, RunAllRethrowsLowestIndexAndPoolSurvives)
{
    ParallelRunner<int> pool(4);
    for (int i = 0; i < 6; ++i) {
        pool.submit(std::string("t") += std::to_string(i), [i]() -> int {
            if (i == 2)
                throw std::runtime_error("first");
            if (i == 4)
                throw std::logic_error("second");
            return i;
        });
    }
    EXPECT_THROW(pool.run_all(), std::runtime_error); // index 2 beats index 4

    // The pool is reusable after a failed batch.
    pool.submit("again", [] { return 7; });
    const auto results = pool.run_all();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].value, 7);
}
