/**
 * @file
 * Byte-identity gates for the domain-partitioned parallel execution mode:
 * every registered scenario must produce the same bytes under any
 * --run-threads x --jobs combination, and a `.mchk` checkpoint captured
 * under one execution mode must restore under the other (in both
 * directions) to a bit-identical RunResult.
 */
#include <cstdlib>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "gpu/gpu_system.hpp"
#include "harness/checkpoint.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "sim/state_io.hpp"
#include "workloads/synthetic_workload.hpp"

using namespace morpheus;

namespace {

/** Pins the process-default run-thread count; restores on scope exit. */
class ThreadsGuard
{
  public:
    explicit ThreadsGuard(unsigned n) { set_default_run_threads(n); }
    ~ThreadsGuard() { set_default_run_threads(0); }
};

struct ScenarioRun
{
    int rc = 0;
    std::string text;
    RunReport report{""};
};

ScenarioRun
run_combo(const Scenario &s, unsigned run_threads, unsigned jobs)
{
    ScenarioRun out;
    out.report = RunReport(s.name);
    ScenarioOptions opts;
    opts.jobs = jobs;
    opts.report = &out.report;
    std::ostringstream os;
    opts.out = &os;
    ThreadsGuard threads(run_threads);
    out.rc = s.run(opts);
    out.text = os.str();
    return out;
}

std::string
result_bytes(const RunResult &r)
{
    StateWriter w;
    RunResult copy = r;
    copy.state(w);
    return w.bytes();
}

WorkloadParams
cross_mode_app()
{
    WorkloadParams p;
    p.name = "cross-mode";
    p.pattern = PatternKind::kPrivateLoop;
    p.alu_per_mem = 4;
    p.shared_ws_bytes = 1 << 20;
    p.per_warp_ws_bytes = 4 * 1024;
    p.reuse_frac = 0.3;
    p.hot_frac = 0.4;
    p.warps_per_sm = 16;
    p.write_frac = 0.2;
    p.total_mem_instrs = 30'000;
    return p;
}

SystemSetup
cross_mode_setup()
{
    SystemSetup s;
    s.compute_sms = 8;
    s.morpheus.enabled = true;
    s.morpheus.cache_sms = 4;
    s.morpheus.prediction = PredictionMode::kBloom;
    return s;
}

/** Captures a mid-run checkpoint at @p boundary under @p threads. */
Checkpoint
capture_under(unsigned threads, Cycle boundary)
{
    ThreadsGuard guard(threads);
    const WorkloadParams p = cross_mode_app();
    SyntheticWorkload wl(p);
    GpuSystem sys(cross_mode_setup(), wl);
    sys.begin_run();
    sys.advance_to(boundary);
    return capture_checkpoint(sys, p, boundary, false);
}

} // namespace

TEST(ParallelDeterminism, EveryScenarioByteIdenticalAcrossModes)
{
    // Small enough that 6 combinations of every scenario stay test-sized;
    // the combination grid is the contract from the parallel-execution
    // design: report bytes never depend on --run-threads or --jobs.
    setenv("MORPHEUS_WORK_SCALE", "0.01", 1);

    const unsigned kThreads[] = {1, 2, 8};
    const unsigned kJobs[] = {1, 4};
    for (const Scenario &s : scenario_registry()) {
        const ScenarioRun base = run_combo(s, 1, 1);
        ASSERT_EQ(base.rc, 0) << s.name;
        if (!base.report.deterministic())
            continue; // wall-clock measurements (micro_components)
        for (unsigned threads : kThreads) {
            for (unsigned jobs : kJobs) {
                if (threads == 1 && jobs == 1)
                    continue;
                const ScenarioRun run = run_combo(s, threads, jobs);
                EXPECT_EQ(run.rc, base.rc) << s.name;
                EXPECT_EQ(run.text, base.text)
                    << s.name << " output differs at run_threads=" << threads
                    << " jobs=" << jobs;
                EXPECT_TRUE(reports_identical(base.report, run.report))
                    << s.name << " report differs at run_threads=" << threads
                    << " jobs=" << jobs;
            }
        }
    }
}

TEST(ParallelDeterminism, CheckpointStateIdenticalAcrossModes)
{
    const Checkpoint serial = capture_under(1, 20'000);
    const Checkpoint parallel = capture_under(8, 20'000);
    EXPECT_EQ(serial.state, parallel.state);
    EXPECT_EQ(serial.cycle, parallel.cycle);
    EXPECT_EQ(serial.flags, parallel.flags);
}

TEST(ParallelDeterminism, CheckpointRestoresAcrossModes)
{
    // Reference: an uninterrupted serial run.
    std::string ref;
    {
        ThreadsGuard guard(1);
        ref = result_bytes(run_setup(cross_mode_setup(), cross_mode_app()));
    }

    // Serial capture -> parallel restore.
    {
        const Checkpoint ck = capture_under(1, 20'000);
        ThreadsGuard guard(8);
        EXPECT_EQ(result_bytes(restore_run(ck)), ref);
    }

    // Parallel capture -> serial restore.
    {
        const Checkpoint ck = capture_under(8, 20'000);
        ThreadsGuard guard(1);
        EXPECT_EQ(result_bytes(restore_run(ck)), ref);
    }
}
