/**
 * @file
 * Size accounting and garbage collection of the result cache
 * (serve/result_cache.hpp, docs/CACHE_FORMAT.md "Size accounting and
 * garbage collection", "Export/import"):
 *
 *  - usage() matches an independent directory walk, byte for byte, and
 *    counts `.tmp.` leftovers — a budget that ignored them would not be
 *    a bound (the stale-tmp accounting bug this suite pins down);
 *  - gc() evicts complete entries in access-time order down to the
 *    byte budget, reaps stale tmp files (dead writer), spares live ones,
 *    and never touches an entry whose key has a fill in flight;
 *  - export → wipe → import round-trips every entry byte-identically,
 *    and a corrupted container never installs anything.
 */
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/result_cache.hpp"

using namespace morpheus;

namespace {

WorkloadParams
tiny_app(const char *name)
{
    WorkloadParams p;
    p.name = name;
    p.pattern = PatternKind::kPrivateLoop;
    p.alu_per_mem = 4;
    p.shared_ws_bytes = 1 << 20;
    p.per_warp_ws_bytes = 4 * 1024;
    p.warps_per_sm = 8;
    p.total_mem_instrs = 8'000;
    return p;
}

class TempCacheDir
{
  public:
    explicit TempCacheDir(const char *tag)
        : path_(std::string(::testing::TempDir()) + "morpheus_gc_" + tag)
    {
        std::filesystem::remove_all(path_);
    }
    ~TempCacheDir() { std::filesystem::remove_all(path_); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Stores entries for compute_sms = 4, 6, 8, ... and returns their keys
 *  in store order. */
std::vector<std::uint64_t>
fill_cache(ResultCache &cache, int count)
{
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < count; ++i) {
        SystemSetup setup;
        setup.compute_sms = 4 + 2 * static_cast<std::uint32_t>(i);
        const WorkloadParams p = tiny_app("gc");
        cache.get_or_run(setup, p, [&] { return run_setup(setup, p); });
        keys.push_back(result_cache_key(setup, p));
    }
    return keys;
}

/** Pins an entry's access time to @p sec (mtime untouched), bypassing
 *  the cache so eviction order is fully under test control. */
void
set_atime(const std::string &path, std::int64_t sec)
{
    timespec times[2];
    times[0].tv_sec = static_cast<time_t>(sec);
    times[0].tv_nsec = 0;
    times[1].tv_nsec = UTIME_OMIT;
    ASSERT_EQ(::utimensat(AT_FDCWD, path.c_str(), times, 0), 0) << path;
}

std::int64_t
atime_of(const std::string &path)
{
    struct stat st{};
    EXPECT_EQ(::stat(path.c_str(), &st), 0) << path;
    return static_cast<std::int64_t>(st.st_atim.tv_sec);
}

std::string
read_file(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
write_file(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

/** A pid guaranteed dead: fork a child that exits immediately and reap
 *  it. No other process can hold this pid until the id space wraps. */
pid_t
dead_pid()
{
    const pid_t child = ::fork();
    if (child == 0)
        ::_exit(0);
    int status = 0;
    ::waitpid(child, &status, 0);
    return child;
}

/** Independent directory walk: (entry_bytes, tmp_bytes) by suffix. */
std::pair<std::uint64_t, std::uint64_t>
du_by_kind(const std::string &dir)
{
    std::uint64_t entries = 0, tmps = 0;
    for (const auto &de : std::filesystem::directory_iterator(dir)) {
        const std::string name = de.path().filename().string();
        const auto size = static_cast<std::uint64_t>(de.file_size());
        if (name.find(".mrce.tmp.") != std::string::npos)
            tmps += size;
        else if (name.size() > 5 && name.rfind(".mrce") == name.size() - 5)
            entries += size;
    }
    return {entries, tmps};
}

} // namespace

// ---------------------------------------------------------------------------
// Size accounting

TEST(CacheGc, UsageMatchesIndependentDirectoryWalk)
{
    TempCacheDir dir("usage");
    ResultCache cache(dir.path());
    ASSERT_TRUE(cache.ok()) << cache.error();
    fill_cache(cache, 3);

    const CacheUsage u = cache.usage();
    const auto [entry_bytes, tmp_bytes] = du_by_kind(dir.path());
    EXPECT_EQ(u.entry_count, 3u);
    EXPECT_EQ(u.entry_bytes, entry_bytes);
    EXPECT_EQ(u.tmp_count, 0u);
    EXPECT_EQ(u.tmp_bytes, tmp_bytes);
    EXPECT_EQ(u.total_bytes(), entry_bytes + tmp_bytes);
}

TEST(CacheGc, TmpLeftoversCountTowardTotalBytes)
{
    // The accounting bug this PR fixes: a crashed writer's `.tmp.` file
    // is real disk usage. If usage() skipped it, `--cache-max-bytes`
    // would not bound the directory.
    TempCacheDir dir("tmpacct");
    ResultCache cache(dir.path());
    ASSERT_TRUE(cache.ok()) << cache.error();
    fill_cache(cache, 1);

    const std::string orphan = dir.path() + "/00000000deadbeef.mrce.tmp." +
                               std::to_string(dead_pid()) + ".7";
    write_file(orphan, std::string(1000, 'x'));

    const CacheUsage u = cache.usage();
    EXPECT_EQ(u.tmp_count, 1u);
    EXPECT_EQ(u.tmp_bytes, 1000u);
    const auto [entry_bytes, tmp_bytes] = du_by_kind(dir.path());
    EXPECT_EQ(u.total_bytes(), entry_bytes + tmp_bytes);
}

// ---------------------------------------------------------------------------
// Garbage collection

TEST(CacheGc, EvictsInAccessTimeOrderDownToBudget)
{
    TempCacheDir dir("order");
    ResultCache cache(dir.path());
    ASSERT_TRUE(cache.ok()) << cache.error();
    const std::vector<std::uint64_t> keys = fill_cache(cache, 4);

    // Access order oldest→newest: keys[0], keys[1], keys[2], keys[3].
    for (int i = 0; i < 4; ++i)
        set_atime(cache.entry_path(keys[static_cast<std::size_t>(i)]), 1000 + i);

    // Budget = exactly the two most recently used entries.
    const std::uint64_t budget =
        static_cast<std::uint64_t>(
            std::filesystem::file_size(cache.entry_path(keys[2]))) +
        static_cast<std::uint64_t>(
            std::filesystem::file_size(cache.entry_path(keys[3])));

    GcResult gc;
    std::string error;
    ASSERT_TRUE(cache.gc(budget, gc, error)) << error;
    EXPECT_EQ(gc.evicted_entries, 2u);
    EXPECT_EQ(gc.kept_entries, 2u);
    EXPECT_LE(gc.kept_bytes, budget);
    EXPECT_FALSE(std::filesystem::exists(cache.entry_path(keys[0])));
    EXPECT_FALSE(std::filesystem::exists(cache.entry_path(keys[1])));
    EXPECT_TRUE(std::filesystem::exists(cache.entry_path(keys[2])));
    EXPECT_TRUE(std::filesystem::exists(cache.entry_path(keys[3])));
    EXPECT_EQ(cache.stats().gc_evictions.load(), 2u);
    EXPECT_LE(cache.usage().total_bytes(), budget);
}

TEST(CacheGc, LookupHitRefreshesEvictionOrder)
{
    TempCacheDir dir("refresh");
    ResultCache cache(dir.path());
    ASSERT_TRUE(cache.ok()) << cache.error();
    const std::vector<std::uint64_t> keys = fill_cache(cache, 2);

    // keys[0] is ancient — then a hit must move it to the front.
    set_atime(cache.entry_path(keys[0]), 1000);
    set_atime(cache.entry_path(keys[1]), 2000);
    RunResult out;
    ASSERT_TRUE(cache.lookup(keys[0], out));
    EXPECT_GT(atime_of(cache.entry_path(keys[0])), 2000);

    // Now keys[1] is the eviction victim.
    GcResult gc;
    std::string error;
    const auto keep = static_cast<std::uint64_t>(
        std::filesystem::file_size(cache.entry_path(keys[0])));
    ASSERT_TRUE(cache.gc(keep, gc, error)) << error;
    EXPECT_TRUE(std::filesystem::exists(cache.entry_path(keys[0])));
    EXPECT_FALSE(std::filesystem::exists(cache.entry_path(keys[1])));
}

TEST(CacheGc, ReapsStaleTmpsButSparesLiveOnes)
{
    TempCacheDir dir("tmps");
    ResultCache cache(dir.path());
    ASSERT_TRUE(cache.ok()) << cache.error();
    fill_cache(cache, 1);

    // Stale: the writer pid is dead. Live: pid 1 exists (kill(1, 0)
    // answers EPERM, which means "alive, not ours").
    const std::string stale = dir.path() + "/00000000aaaaaaaa.mrce.tmp." +
                              std::to_string(dead_pid()) + ".0";
    const std::string live = dir.path() + "/00000000bbbbbbbb.mrce.tmp.1.0";
    write_file(stale, std::string(500, 's'));
    write_file(live, std::string(300, 'l'));

    GcResult gc;
    std::string error;
    ASSERT_TRUE(cache.gc(1 << 20, gc, error)) << error; // generous budget
    EXPECT_EQ(gc.reaped_tmp, 1u);
    EXPECT_EQ(gc.reaped_tmp_bytes, 500u);
    EXPECT_FALSE(std::filesystem::exists(stale));
    EXPECT_TRUE(std::filesystem::exists(live));
    EXPECT_EQ(gc.evicted_entries, 0u); // under budget, entries untouched

    std::filesystem::remove(live); // don't leak into the next scan
}

TEST(CacheGc, NeverEvictsAnEntryWhoseKeyIsInFlight)
{
    TempCacheDir dir("inflight");
    ResultCache cache(dir.path());
    ASSERT_TRUE(cache.ok()) << cache.error();

    SystemSetup setup;
    setup.compute_sms = 6;
    const WorkloadParams p = tiny_app("pin");
    const std::uint64_t key = result_cache_key(setup, p);

    // A filler thread holds `key` in flight, blocked mid-simulation.
    std::mutex mu;
    std::condition_variable cv;
    bool started = false, release = false;
    std::thread filler([&] {
        cache.get_or_run(setup, p, [&] {
            {
                std::unique_lock<std::mutex> lock(mu);
                started = true;
                cv.notify_all();
                cv.wait(lock, [&] { return release; });
            }
            return run_setup(setup, p);
        });
    });
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return started; });
    }

    // An entry for that key appears on disk (say, another process
    // finished first). gc-to-zero must pin it: the in-flight fill will
    // re-publish it anyway, so evicting it would only waste the bytes.
    ASSERT_TRUE(cache.store(key, run_setup(setup, p)));
    GcResult gc;
    std::string error;
    ASSERT_TRUE(cache.gc(0, gc, error)) << error;
    EXPECT_TRUE(std::filesystem::exists(cache.entry_path(key)));
    EXPECT_EQ(gc.evicted_entries, 0u);
    EXPECT_EQ(gc.kept_entries, 1u);

    {
        std::lock_guard<std::mutex> lock(mu);
        release = true;
    }
    cv.notify_all();
    filler.join();

    // Once the fill retires, the same budget evicts it.
    ASSERT_TRUE(cache.gc(0, gc, error)) << error;
    EXPECT_FALSE(std::filesystem::exists(cache.entry_path(key)));
    EXPECT_EQ(gc.evicted_entries, 1u);
}

TEST(CacheGc, GcRacingConcurrentFillsLosesNoResults)
{
    // Hammer gc(0) while four threads fill distinct keys: every
    // get_or_run must still return a result, and the directory must end
    // validly loadable (gc never tears an entry or a tmp mid-write).
    TempCacheDir dir("race");
    ResultCache cache(dir.path());
    ASSERT_TRUE(cache.ok()) << cache.error();

    std::atomic<bool> stop{false};
    std::thread collector([&] {
        while (!stop.load()) {
            GcResult gc;
            std::string error;
            ASSERT_TRUE(cache.gc(0, gc, error)) << error;
        }
    });

    constexpr int kThreads = 4, kRounds = 8;
    std::vector<std::thread> fillers;
    for (int t = 0; t < kThreads; ++t) {
        fillers.emplace_back([&, t] {
            for (int r = 0; r < kRounds; ++r) {
                SystemSetup setup;
                setup.compute_sms = 4 + 2 * static_cast<std::uint32_t>(t);
                const WorkloadParams p = tiny_app("race");
                cache.get_or_run(setup, p, [&] { return run_setup(setup, p); });
            }
        });
    }
    for (auto &th : fillers)
        th.join();
    stop.store(true);
    collector.join();

    // Whatever survived the crossfire must be individually valid.
    ResultCache reader(dir.path());
    for (int t = 0; t < kThreads; ++t) {
        SystemSetup setup;
        setup.compute_sms = 4 + 2 * static_cast<std::uint32_t>(t);
        const std::uint64_t key = result_cache_key(setup, tiny_app("race"));
        if (std::filesystem::exists(reader.entry_path(key))) {
            RunResult out;
            EXPECT_TRUE(reader.lookup(key, out)) << "torn entry for thread " << t;
        }
    }
}

// ---------------------------------------------------------------------------
// Export / import

TEST(CacheGc, ExportWipeImportRoundTripsByteIdentically)
{
    TempCacheDir dir("roundtrip");
    ResultCache cache(dir.path());
    ASSERT_TRUE(cache.ok()) << cache.error();
    const std::vector<std::uint64_t> keys = fill_cache(cache, 3);

    std::map<std::uint64_t, std::string> original;
    for (const std::uint64_t key : keys)
        original[key] = read_file(cache.entry_path(key));

    const std::string container = dir.path() + "/dump.mrcx";
    std::uint64_t exported = 0;
    std::string error;
    ASSERT_TRUE(cache.export_entries(container, exported, error)) << error;
    EXPECT_EQ(exported, 3u);

    GcResult gc;
    ASSERT_TRUE(cache.gc(0, gc, error)) << error;
    EXPECT_EQ(gc.evicted_entries, 3u);

    ImportResult imported;
    ASSERT_TRUE(cache.import_entries(container, imported, error)) << error;
    EXPECT_EQ(imported.imported, 3u);
    EXPECT_EQ(imported.replaced, 0u);
    for (const std::uint64_t key : keys) {
        EXPECT_EQ(read_file(cache.entry_path(key)), original[key])
            << "entry " << std::hex << key;
        RunResult out;
        EXPECT_TRUE(cache.lookup(key, out));
    }

    // Re-import over a full cache: same bytes, counted as replacements.
    ASSERT_TRUE(cache.import_entries(container, imported, error)) << error;
    EXPECT_EQ(imported.replaced, 3u);
}

TEST(CacheGc, CorruptedContainerImportsNothingInvalid)
{
    TempCacheDir dir("corrupt");
    ResultCache cache(dir.path());
    ASSERT_TRUE(cache.ok()) << cache.error();
    fill_cache(cache, 2);

    const std::string container = dir.path() + "/dump.mrcx";
    std::uint64_t exported = 0;
    std::string error;
    ASSERT_TRUE(cache.export_entries(container, exported, error)) << error;
    const std::string good = read_file(container);

    GcResult gc;
    ASSERT_TRUE(cache.gc(0, gc, error)) << error;

    // Bad magic: rejected outright, nothing installed.
    std::string bad = good;
    bad[0] = 'X';
    write_file(container, bad);
    ImportResult imported;
    EXPECT_FALSE(cache.import_entries(container, imported, error));
    EXPECT_EQ(cache.usage().entry_count, 0u);

    // A flipped payload byte: the record's digest check aborts the
    // import; whatever was installed before the bad record is valid.
    bad = good;
    bad[bad.size() - 5] ^= 0x40;
    write_file(container, bad);
    EXPECT_FALSE(cache.import_entries(container, imported, error));
    ResultCache reader(dir.path());
    for (const auto &de : std::filesystem::directory_iterator(dir.path())) {
        const std::string name = de.path().filename().string();
        if (name.size() == 21 && name.rfind(".mrce") == 16) {
            const std::uint64_t key = std::stoull(name.substr(0, 16), nullptr, 16);
            RunResult out;
            EXPECT_TRUE(reader.lookup(key, out)) << name;
        }
    }

    // Truncation mid-record: same story.
    write_file(container, good.substr(0, good.size() / 2));
    EXPECT_FALSE(cache.import_entries(container, imported, error));
}
