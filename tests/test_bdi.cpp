#include <gtest/gtest.h>

#include <cstring>

#include "cache/bdi.hpp"
#include "sim/rng.hpp"

using namespace morpheus;

namespace {

Block
block_of_u64(std::uint64_t base, std::uint64_t step)
{
    Block b{};
    for (std::uint32_t i = 0; i < kLineBytes / 8; ++i) {
        const std::uint64_t v = base + i * step;
        std::memcpy(b.data() + i * 8, &v, 8);
    }
    return b;
}

} // namespace

TEST(Bdi, ZeroBlockCompressesToOneByte)
{
    Block zero{};
    const BdiResult r = bdi_compress(zero);
    EXPECT_EQ(r.encoding, BdiEncoding::kZeros);
    EXPECT_EQ(r.size_bytes, 1u);
    EXPECT_EQ(r.level, CompLevel::kHigh);
}

TEST(Bdi, RepeatedValueCompressesToEightBytes)
{
    const Block b = block_of_u64(0xDEADBEEFCAFEF00DULL, 0);
    const BdiResult r = bdi_compress(b);
    EXPECT_EQ(r.encoding, BdiEncoding::kRepeat);
    EXPECT_EQ(r.size_bytes, 8u);
    EXPECT_EQ(r.level, CompLevel::kHigh);
}

TEST(Bdi, SmallDeltasHitBase8Delta1)
{
    const Block b = block_of_u64(1ULL << 40, 3);  // deltas 0..45
    const BdiResult r = bdi_compress(b);
    EXPECT_EQ(r.encoding, BdiEncoding::kBase8Delta1);
    EXPECT_EQ(r.size_bytes, 26u);  // 8 base + 2 mask + 16 deltas
    EXPECT_EQ(r.level, CompLevel::kHigh);
}

TEST(Bdi, MediumDeltasHitBase8Delta2)
{
    const Block b = block_of_u64(1ULL << 40, 2000);  // deltas up to 30000
    const BdiResult r = bdi_compress(b);
    EXPECT_EQ(r.encoding, BdiEncoding::kBase8Delta2);
    EXPECT_EQ(r.size_bytes, 42u);
    EXPECT_EQ(r.level, CompLevel::kLow);
}

TEST(Bdi, RandomDataStaysUncompressed)
{
    Rng rng(0xBD1);
    Block b{};
    for (auto &byte : b)
        byte = static_cast<std::uint8_t>(rng.next_u64());
    const BdiResult r = bdi_compress(b);
    EXPECT_EQ(r.encoding, BdiEncoding::kUncompressed);
    EXPECT_EQ(r.size_bytes, kLineBytes);
    EXPECT_EQ(r.level, CompLevel::kUncompressed);
}

TEST(Bdi, MixedSignDeltasUseZeroImmediateBase)
{
    // Half the segments are near zero, half near a large base: the
    // two-base (zero-immediate) scheme is what makes this compressible.
    Block b{};
    for (std::uint32_t i = 0; i < 16; ++i) {
        const std::uint64_t v = (i % 2 == 0) ? i : (1ULL << 40) + i;
        std::memcpy(b.data() + i * 8, &v, 8);
    }
    const BdiResult r = bdi_compress(b);
    EXPECT_EQ(r.encoding, BdiEncoding::kBase8Delta1);
}

TEST(Bdi, LevelMappingMatchesPaper)
{
    EXPECT_EQ(comp_level_for_size(32), CompLevel::kHigh);
    EXPECT_EQ(comp_level_for_size(33), CompLevel::kLow);
    EXPECT_EQ(comp_level_for_size(64), CompLevel::kLow);
    EXPECT_EQ(comp_level_for_size(65), CompLevel::kUncompressed);
    EXPECT_EQ(comp_level_bytes(CompLevel::kHigh), 32u);
    EXPECT_EQ(comp_level_bytes(CompLevel::kLow), 64u);
    EXPECT_EQ(comp_level_bytes(CompLevel::kUncompressed), 128u);
}

/** Property: encode/decode round-trips for arbitrary synthesized data. */
class BdiRoundTrip : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BdiRoundTrip, EncodeDecodeIsLossless)
{
    Rng rng(GetParam());
    std::vector<std::uint8_t> encoded;
    for (int trial = 0; trial < 200; ++trial) {
        Block b{};
        // Mix of patterns: runs, arithmetic sequences, random bytes.
        const int kind = trial % 4;
        for (std::uint32_t i = 0; i < kLineBytes / 8; ++i) {
            std::uint64_t v = 0;
            switch (kind) {
              case 0:
                v = rng.next_below(200);
                break;
              case 1:
                v = (1ULL << 35) + i * rng.next_below(1000);
                break;
              case 2:
                v = rng.next_u64();
                break;
              default:
                v = (i % 3 == 0) ? 0 : (1ULL << 50) + rng.next_below(100);
                break;
            }
            std::memcpy(b.data() + i * 8, &v, 8);
        }
        const BdiResult r = bdi_encode(b, encoded);
        ASSERT_EQ(encoded.size(), r.size_bytes);
        const Block back = bdi_decode(r.encoding, encoded);
        ASSERT_EQ(back, b) << "trial " << trial << " enc " << bdi_encoding_name(r.encoding);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BdiRoundTrip, ::testing::Values(1u, 2u, 3u, 4u));

TEST(Bdi, EncodedSizeNeverExceedsLine)
{
    Rng rng(77);
    std::vector<std::uint8_t> encoded;
    for (int i = 0; i < 100; ++i) {
        Block b{};
        for (auto &byte : b)
            byte = static_cast<std::uint8_t>(rng.next_u64());
        const BdiResult r = bdi_encode(b, encoded);
        EXPECT_LE(r.size_bytes, kLineBytes);
    }
}
