#include <gtest/gtest.h>

#include "noc/crossbar.hpp"

using namespace morpheus;

TEST(Crossbar, UnloadedTransferIsHopPlusSerialization)
{
    Crossbar noc;
    const Cycle done = noc.sm_to_partition(100, 0, 0, 128);
    // 144 bytes over the slower (64 B/cy) link + 30-cycle hop.
    EXPECT_GE(done - 100, noc.params().hop_latency + 2);
    EXPECT_LE(done - 100, noc.params().hop_latency + 4);
}

TEST(Crossbar, SmLinkSerializesPerSm)
{
    Crossbar noc;
    const Cycle t1 = noc.sm_to_partition(0, 5, 0, 128);
    const Cycle t2 = noc.sm_to_partition(0, 5, 1, 128);  // same SM, other partition
    EXPECT_GT(t2, t1);
    // A different SM's transfer is unaffected.
    const Cycle t3 = noc.sm_to_partition(0, 6, 2, 128);
    EXPECT_EQ(t3, t1);
}

TEST(Crossbar, DirectionsAreIndependent)
{
    Crossbar noc;
    const Cycle out = noc.sm_to_partition(0, 0, 0, 128);
    const Cycle in = noc.partition_to_sm(0, 0, 0, 128);
    EXPECT_EQ(out, in);  // no shared resource between directions
}

TEST(Crossbar, StatsAccumulate)
{
    Crossbar noc;
    noc.sm_to_partition(0, 0, 0, 128);
    noc.partition_to_sm(0, 0, 1, 0);
    EXPECT_EQ(noc.transfers(), 2u);
    EXPECT_EQ(noc.injected_bytes(), 128u + 2 * noc.params().header_bytes);
    EXPECT_GT(noc.transfer_latency().mean(), 0.0);
    EXPECT_GT(noc.injection_rate(100), 0.0);
}

TEST(Crossbar, FrequencyBoostShortensHop)
{
    Crossbar slow;
    Crossbar fast;
    fast.set_frequency_scale(1.2);
    EXPECT_LT(fast.sm_to_partition(0, 0, 0, 0), slow.sm_to_partition(0, 0, 0, 0));
}

TEST(Crossbar, BandwidthBoundUnderLoad)
{
    Crossbar noc;
    Cycle last = 0;
    constexpr int kTransfers = 500;
    for (int i = 0; i < kTransfers; ++i)
        last = noc.partition_to_sm(0, 0, 0, 128);
    // The narrower SM-side link (64 B/cy) bounds delivery.
    const double bytes = kTransfers * (128.0 + noc.params().header_bytes);
    EXPECT_GE(static_cast<double>(last), bytes / noc.params().sm_link_bytes_per_cycle * 0.95);
}
