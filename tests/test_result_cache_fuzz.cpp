/**
 * @file
 * Torture tests for the result-cache entry format (docs/CACHE_FORMAT.md):
 * every truncation, every single-byte mutation, random splices, crafted
 * bad headers, and pure garbage must be rejected AND evicted — the cache
 * never serves bytes it cannot fully validate, and never crashes on
 * them. The CI sanitize job (ASan+UBSan, halt_on_error) runs this
 * binary, which upgrades "rejected" to "provably no UB".
 *
 * The reject-everything invariant is airtight by construction: all six
 * header fields are validated exactly (magic, version, key, payload
 * size, payload digest, zero reserved word), and a single-byte change
 * anywhere in the payload always changes its FNV-1a digest (each
 * absorb step is injective), so no single-byte corruption can slip
 * through.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "harness/sweep_engine.hpp"
#include "serve/result_cache.hpp"
#include "sim/rng.hpp"
#include "sim/state_io.hpp"

using namespace morpheus;

namespace {

/** A deterministic hand-built result: the fuzz corpus seed (no
 *  simulation needed; the cache stores any RunResult bit-exactly). */
RunResult
seed_result()
{
    RunResult r;
    r.workload = "fuzz-seed";
    r.cycles = 123'456;
    r.instructions = 789'012;
    r.ipc = 6.394;
    r.l1_hits = 1111;
    r.l1_misses = 222;
    r.llc_accesses = 3333;
    r.llc_hits = 2000;
    r.llc_misses = 1333;
    r.ext_requests = 444;
    r.ext_hits = 300;
    r.ext_misses = 144;
    r.dram_reads = 555;
    r.dram_writes = 66;
    r.mpki = 1.687;
    r.energy.dram_j = 0.25;
    r.avg_watts = 87.5;
    return r;
}

class FuzzCache : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::string(::testing::TempDir()) + "morpheus_cache_fuzz";
        std::filesystem::remove_all(dir_);
        cache_ = std::make_unique<ResultCache>(dir_);
        ASSERT_TRUE(cache_->ok()) << cache_->error();
        key_ = 0x1122334455667788ULL;
        ASSERT_TRUE(cache_->store(key_, seed_result()));
        std::ifstream in(cache_->entry_path(key_), std::ios::binary);
        valid_.assign(std::istreambuf_iterator<char>(in), {});
        ASSERT_GE(valid_.size(), 40u);
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    /** Writes @p bytes as the entry for key_. */
    void
    plant(const std::string &bytes)
    {
        std::ofstream out(cache_->entry_path(key_), std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }

    /** The corrupted entry must be rejected, evicted from disk, and must
     *  not disturb later stores. */
    void
    expect_rejected_and_evicted(const std::string &bytes)
    {
        plant(bytes);
        RunResult out;
        ASSERT_FALSE(cache_->lookup(key_, out));
        EXPECT_FALSE(std::filesystem::exists(cache_->entry_path(key_)));
        // The slot is reusable: a fresh store round-trips.
        ASSERT_TRUE(cache_->store(key_, seed_result()));
        ASSERT_TRUE(cache_->lookup(key_, out));
        EXPECT_TRUE(run_results_identical(out, seed_result()));
    }

    std::string dir_;
    std::unique_ptr<ResultCache> cache_;
    std::uint64_t key_ = 0;
    std::string valid_;
};

} // namespace

TEST_F(FuzzCache, ValidEntryRoundTrips)
{
    RunResult out;
    ASSERT_TRUE(cache_->lookup(key_, out));
    EXPECT_TRUE(run_results_identical(out, seed_result()));
    EXPECT_EQ(cache_->stats().evictions.load(), 0u);
}

TEST_F(FuzzCache, AllTruncationsRejected)
{
    // Every proper prefix — mid-header, header-only, mid-payload — is a
    // torn write and must be evicted, never parsed.
    for (std::size_t len = 0; len < valid_.size(); ++len) {
        plant(valid_.substr(0, len));
        RunResult out;
        ASSERT_FALSE(cache_->lookup(key_, out)) << "prefix of " << len << " bytes served";
        EXPECT_FALSE(std::filesystem::exists(cache_->entry_path(key_)))
            << "prefix of " << len << " bytes not evicted";
    }
    EXPECT_EQ(cache_->stats().evictions.load(), valid_.size());
}

TEST_F(FuzzCache, EverySingleByteMutationRejected)
{
    // Exhaustive over positions, randomized over values: no single-byte
    // corruption anywhere in the file may survive validation.
    Rng rng(0xCAC4'E001);
    for (std::size_t at = 0; at < valid_.size(); ++at) {
        std::string bytes = valid_;
        bytes[at] = static_cast<char>(
            static_cast<unsigned char>(bytes[at]) ^
            static_cast<unsigned char>(1 + rng.next_below(255)));
        plant(bytes);
        RunResult out;
        ASSERT_FALSE(cache_->lookup(key_, out)) << "mutation at byte " << at << " served";
        EXPECT_FALSE(std::filesystem::exists(cache_->entry_path(key_)));
    }
}

TEST_F(FuzzCache, ThousandsOfRandomMutationsRejected)
{
    Rng rng(0xCAC4'E002);
    for (int iter = 0; iter < 3000; ++iter) {
        std::string bytes = valid_;
        const int edits = 1 + static_cast<int>(rng.next_below(8));
        for (int e = 0; e < edits; ++e) {
            switch (rng.next_below(4)) {
              case 0: // flip a byte
                bytes[rng.next_below(bytes.size())] ^=
                    static_cast<char>(1 + rng.next_below(255));
                break;
              case 1: // truncate
                bytes.resize(rng.next_below(bytes.size() + 1));
                break;
              case 2: // append garbage
                for (std::size_t n = rng.next_below(16) + 1; n; --n)
                    bytes.push_back(static_cast<char>(rng.next_below(256)));
                break;
              default: // splice a window elsewhere
                if (bytes.size() > 8) {
                    const std::size_t src = rng.next_below(bytes.size() - 4);
                    const std::size_t dst = rng.next_below(bytes.size() - 4);
                    bytes.replace(dst, 4, bytes, src, 4);
                }
                break;
            }
        }
        if (bytes == valid_)
            continue; // edits cancelled out; nothing to reject
        plant(bytes);
        RunResult out;
        ASSERT_FALSE(cache_->lookup(key_, out)) << "iteration " << iter << " served";
        EXPECT_FALSE(std::filesystem::exists(cache_->entry_path(key_)));
    }
}

TEST_F(FuzzCache, PureGarbageRejected)
{
    Rng rng(0xCAC4'E003);
    for (int iter = 0; iter < 200; ++iter) {
        std::string bytes;
        for (std::size_t n = rng.next_below(512); n; --n)
            bytes.push_back(static_cast<char>(rng.next_below(256)));
        plant(bytes);
        RunResult out;
        ASSERT_FALSE(cache_->lookup(key_, out)) << "iteration " << iter;
    }
}

// ---------------------------------------------------------------------------
// Crafted corruptions — one per validation rule, so each check is
// individually load-bearing.

TEST_F(FuzzCache, WrongMagicRejected)
{
    std::string bytes = valid_;
    bytes[0] = 'X';
    expect_rejected_and_evicted(bytes);
}

TEST_F(FuzzCache, StaleFormatVersionRejected)
{
    // A future (or ancient) format version must never be reinterpreted —
    // the invalidation story of docs/CACHE_FORMAT.md hangs on this.
    std::string bytes = valid_;
    const std::uint32_t stale = kResultCacheVersion + 1;
    std::memcpy(&bytes[4], &stale, sizeof stale);
    expect_rejected_and_evicted(bytes);
}

TEST_F(FuzzCache, KeyMismatchRejected)
{
    // An entry renamed (or hard-linked) to another key's filename is a
    // poisoned lookup: the header key must match the requested key.
    std::string bytes = valid_;
    const std::uint64_t other = key_ ^ 1;
    std::memcpy(&bytes[8], &other, sizeof other);
    expect_rejected_and_evicted(bytes);
}

TEST_F(FuzzCache, BadPayloadDigestRejected)
{
    std::string bytes = valid_;
    bytes[28] ^= 0x40; // payload_digest field (bytes 24..31)
    expect_rejected_and_evicted(bytes);
}

TEST_F(FuzzCache, OversizedPayloadSizeRejected)
{
    // A huge claimed size must not drive a huge read or allocation; the
    // declared size must equal the actual payload exactly.
    std::string bytes = valid_;
    const std::uint64_t huge = 1ULL << 60;
    std::memcpy(&bytes[16], &huge, sizeof huge);
    expect_rejected_and_evicted(bytes);
}

TEST_F(FuzzCache, NonzeroReservedRejected)
{
    std::string bytes = valid_;
    bytes[39] = 0x01; // last reserved byte
    expect_rejected_and_evicted(bytes);
}

TEST_F(FuzzCache, TrailingBytesRejected)
{
    // Extra bytes after a digest-valid payload mean the writer and
    // reader disagree about the format; never trust the prefix.
    std::string bytes = valid_;
    bytes += "extra";
    expect_rejected_and_evicted(bytes);
}

TEST_F(FuzzCache, HeaderOnlyAndEmptyFilesRejected)
{
    expect_rejected_and_evicted(valid_.substr(0, 40));
    expect_rejected_and_evicted("");
}

TEST_F(FuzzCache, DigestValidWrongShapePayloadRejected)
{
    // A header whose size and digest match a payload that is NOT a
    // serialized RunResult (e.g. written by a different tool version
    // under the same format id): StateReader's shape checks are the
    // last line of defense.
    const std::string payload = "these are not RunResult bytes....";
    std::string bytes(40, '\0');
    const std::uint32_t magic = kResultCacheMagic, version = kResultCacheVersion;
    const std::uint64_t size = payload.size(), digest = fnv1a64(payload), zero = 0;
    std::memcpy(&bytes[0], &magic, 4);
    std::memcpy(&bytes[4], &version, 4);
    std::memcpy(&bytes[8], &key_, 8);
    std::memcpy(&bytes[16], &size, 8);
    std::memcpy(&bytes[24], &digest, 8);
    std::memcpy(&bytes[32], &zero, 8);
    bytes += payload;
    expect_rejected_and_evicted(bytes);
}
