#include <gtest/gtest.h>

#include <list>
#include <unordered_set>

#include "morpheus/hit_miss_predictor.hpp"
#include "sim/rng.hpp"

using namespace morpheus;

TEST(Predictor, EmptyPredictsMiss)
{
    DualBloomPredictor pred(32);
    for (LineAddr l = 0; l < 100; ++l)
        EXPECT_FALSE(pred.predict_hit(l));
}

TEST(Predictor, AccessedLinesPredictHit)
{
    DualBloomPredictor pred(32);
    for (LineAddr l = 0; l < 32; ++l)
        pred.on_access(l);
    for (LineAddr l = 0; l < 32; ++l)
        EXPECT_TRUE(pred.predict_hit(l));
}

TEST(Predictor, SwapsAfterAssociativityDistinctAccesses)
{
    DualBloomPredictor pred(8);
    EXPECT_EQ(pred.swaps(), 0u);
    for (LineAddr l = 0; l < 8; ++l)
        pred.on_access(l);
    EXPECT_EQ(pred.swaps(), 1u);
    EXPECT_EQ(pred.mru_count(), 0u);
}

TEST(Predictor, ReaccessesDoNotAdvanceMruCount)
{
    DualBloomPredictor pred(8);
    for (int i = 0; i < 20; ++i)
        pred.on_access(7);  // same line over and over
    EXPECT_EQ(pred.swaps(), 0u);
    EXPECT_LE(pred.mru_count(), 1u);
}

TEST(Predictor, SwapShedsStaleEvictedLines)
{
    // Fill with one generation, then access a fully disjoint second
    // generation twice (two swaps): the first generation's lines should
    // mostly predict miss again (false positives decay).
    DualBloomPredictor pred(16);
    for (LineAddr l = 0; l < 16; ++l)
        pred.on_access(l);
    for (LineAddr l = 1000; l < 1032; ++l)
        pred.on_access(l);  // two swaps' worth of distinct lines
    int stale_hits = 0;
    for (LineAddr l = 0; l < 16; ++l)
        stale_hits += pred.predict_hit(l);
    EXPECT_LE(stale_hits, 3);
}

TEST(Predictor, StorageMatchesPaperNominal)
{
    EXPECT_EQ(DualBloomPredictor::nominal_storage_bytes(), 64u);  // 2 x 32 B
    DualBloomPredictor pred(32);
    EXPECT_EQ(pred.storage_bytes(), 64u);
}

TEST(Predictor, ModeNames)
{
    EXPECT_STREQ(prediction_mode_name(PredictionMode::kNone), "No-Prediction");
    EXPECT_STREQ(prediction_mode_name(PredictionMode::kBloom), "Bloom-Filter");
    EXPECT_STREQ(prediction_mode_name(PredictionMode::kPerfect), "Perfect-Prediction");
}

/**
 * The paper's correctness property (§4.1.2): against an LRU-managed set
 * of the declared associativity, the predictor never produces a false
 * negative — any resident line predicts hit — across arbitrary traffic,
 * including across BF1/BF2 swaps.
 */
class PredictorNoFalseNegative : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(PredictorNoFalseNegative, ResidentLinesAlwaysPredictHit)
{
    const std::uint32_t assoc = GetParam();
    DualBloomPredictor pred(assoc);
    std::list<LineAddr> lru;  // front = LRU, reference LRU set
    Rng rng(assoc * 7919);

    for (int step = 0; step < 30'000; ++step) {
        const LineAddr line = rng.next_below(assoc * 4);

        // Check the invariant BEFORE the access: a resident line must be
        // predicted hit.
        const auto it = std::find(lru.begin(), lru.end(), line);
        if (it != lru.end()) {
            ASSERT_TRUE(pred.predict_hit(line))
                << "false negative for resident line " << line << " at step " << step;
        }

        // Simulate the access: LRU update / insert-with-eviction, then
        // tell the predictor (as the Morpheus controller does).
        if (it != lru.end())
            lru.erase(it);
        else if (lru.size() == assoc)
            lru.pop_front();
        lru.push_back(line);
        pred.on_access(line);
    }
}

INSTANTIATE_TEST_SUITE_P(Associativities, PredictorNoFalseNegative,
                         ::testing::Values(8u, 16u, 32u, 51u, 64u, 204u));

TEST(Predictor, FalsePositiveRateStaysModerate)
{
    const std::uint32_t assoc = 32;
    DualBloomPredictor pred(assoc);
    std::list<LineAddr> lru;
    Rng rng(0xFA15E);
    int fp = 0;
    int predicted_hits = 0;

    for (int step = 0; step < 40'000; ++step) {
        const LineAddr line = rng.next_below(assoc * 8);
        const bool resident = std::find(lru.begin(), lru.end(), line) != lru.end();
        if (pred.predict_hit(line)) {
            ++predicted_hits;
            fp += !resident;
        }
        if (resident)
            lru.remove(line);
        else if (lru.size() == assoc)
            lru.pop_front();
        lru.push_back(line);
        pred.on_access(line);
    }
    // BF1 legitimately contains recently evicted lines; the rate should
    // still be far below chance (residency is 1/8 of the footprint).
    EXPECT_LT(static_cast<double>(fp) / predicted_hits, 0.60);
    EXPECT_GT(predicted_hits, 0);
}
