#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "gpu/gpu_system.hpp"
#include "harness/report.hpp"
#include "harness/sweep_engine.hpp"
#include "harness/system_config.hpp"
#include "sim/rng.hpp"

using namespace morpheus;

namespace {

RunReport
sample_report()
{
    RunReport report("unit_test");
    report.set_work_scale(0.5);
    report.set_jobs(4);
    report.set_wall_ms(123.25);

    ReportEntry &a = report.add_entry("kmeans/BL");
    a.set("cycles", 123456789.0);
    a.set("ipc", 1.2345678901234567);
    a.set("tiny", 1e-17);
    a.set("negative", -42.5);

    ReportEntry &b = report.add_entry("label \"quoted\"\nand newlined");
    b.set("zero", 0.0);
    return report;
}

} // namespace

TEST(RunReport, JsonRoundTripIsExact)
{
    const RunReport original = sample_report();
    RunReport parsed;
    std::string error;
    ASSERT_TRUE(RunReport::parse_json(original.to_json(), parsed, error)) << error;

    EXPECT_TRUE(reports_identical(original, parsed));
    // Environment survives the round trip too (it is just never compared).
    EXPECT_EQ(parsed.jobs(), 4u);
    EXPECT_DOUBLE_EQ(parsed.wall_ms(), 123.25);
    // Doubles are exact, not approximate.
    ASSERT_NE(parsed.find_entry("kmeans/BL"), nullptr);
    EXPECT_EQ(*parsed.find_entry("kmeans/BL")->find("ipc"), 1.2345678901234567);
    EXPECT_EQ(*parsed.find_entry("kmeans/BL")->find("tiny"), 1e-17);
}

TEST(RunReport, SecondRoundTripIsByteIdentical)
{
    // Stability matters: committed baselines must not churn when re-saved.
    const RunReport original = sample_report();
    RunReport parsed;
    std::string error;
    ASSERT_TRUE(RunReport::parse_json(original.to_json(), parsed, error)) << error;
    EXPECT_EQ(original.to_json(), parsed.to_json());
}

TEST(RunReport, DefaultFilename)
{
    EXPECT_EQ(RunReport::default_filename("fig12_performance"), "BENCH_fig12_performance.json");
}

TEST(RunReport, EnvironmentDoesNotAffectIdentity)
{
    RunReport a = sample_report();
    RunReport b = sample_report();
    b.set_jobs(1);
    b.set_wall_ms(9999.0);
    EXPECT_TRUE(reports_identical(a, b));
}

TEST(RunReport, ContextAffectsIdentity)
{
    RunReport a = sample_report();
    RunReport b = sample_report();
    b.set_work_scale(1.0);
    EXPECT_FALSE(reports_identical(a, b));

    RunReport c = sample_report();
    c.set_deterministic(false);
    EXPECT_FALSE(reports_identical(a, c));
}

TEST(RunReport, ParseRejectsMalformedInput)
{
    RunReport out;
    std::string error;
    EXPECT_FALSE(RunReport::parse_json("", out, error));
    EXPECT_FALSE(RunReport::parse_json("not json", out, error));
    EXPECT_FALSE(RunReport::parse_json("[1, 2]", out, error));
    EXPECT_FALSE(RunReport::parse_json("{\"scenario\": \"x\"}", out, error)); // no version
    EXPECT_FALSE(RunReport::parse_json("{\"schema_version\": 1}", out, error)); // no scenario
    EXPECT_FALSE(RunReport::parse_json(
        "{\"schema_version\": 1, \"scenario\": \"x\", \"entries\": [{\"label\": \"a\"}]}", out,
        error)); // entry without metrics
    EXPECT_FALSE(error.empty());
}

TEST(RunReport, ParseIgnoresUnknownKeys)
{
    RunReport out;
    std::string error;
    const char *text =
        "{\"schema_version\": 1, \"scenario\": \"x\", \"future_field\": {\"a\": [1, 2]},"
        " \"entries\": [{\"label\": \"j\", \"metrics\": {\"m\": 3.5}, \"notes\": \"hi\"}]}";
    ASSERT_TRUE(RunReport::parse_json(text, out, error)) << error;
    ASSERT_EQ(out.entries().size(), 1u);
    EXPECT_EQ(*out.entries()[0].find("m"), 3.5);
}

TEST(RunReport, AddRunExtractsTheStandardMetricSet)
{
    RunResult r;
    r.cycles = 1000;
    r.instructions = 4000;
    r.ipc = 4.0;
    r.l1_hits = 75;
    r.l1_misses = 25;
    r.ext_requests = 10;
    r.ext_hits = 7;
    r.avg_watts = 123.5;

    RunReport report("x");
    report.add_run("job", r);
    ASSERT_EQ(report.entries().size(), 1u);
    const ReportEntry &e = report.entries()[0];
    EXPECT_EQ(*e.find("cycles"), 1000.0);
    EXPECT_EQ(*e.find("ipc"), 4.0);
    EXPECT_EQ(*e.find("l1_hit_rate"), 0.75);
    EXPECT_EQ(*e.find("ext_hit_rate"), 0.7);
    EXPECT_EQ(*e.find("avg_watts"), 123.5);
    EXPECT_EQ(e.find("no_such_metric"), nullptr);
}

TEST(RunReport, SaveAndLoadFile)
{
    const RunReport original = sample_report();
    const std::string path = testing::TempDir() + "morpheus_report_test.json";
    std::string error;
    ASSERT_TRUE(original.save_file(path, error)) << error;

    RunReport loaded;
    ASSERT_TRUE(RunReport::load_file(path, loaded, error)) << error;
    EXPECT_TRUE(reports_identical(original, loaded));
    std::remove(path.c_str());

    EXPECT_FALSE(RunReport::load_file("/nonexistent/dir/nope.json", loaded, error));
}

TEST(RunReport, SweepEngineRecordsEveryJobInSubmissionOrder)
{
    WorkloadParams params;
    params.name = "report-test";
    params.total_mem_instrs = 500;
    SystemSetup setup;
    setup.compute_sms = 2;

    RunReport report("sweep");
    SweepEngine engine(2);
    engine.set_report(&report);
    engine.add(setup, params, "first");
    engine.add(setup, params, "second");
    const auto results = engine.run_all();

    ASSERT_EQ(report.entries().size(), 2u);
    EXPECT_EQ(report.entries()[0].label, "first");
    EXPECT_EQ(report.entries()[1].label, "second");
    EXPECT_EQ(*report.entries()[0].find("cycles"),
              static_cast<double>(results[0].value.cycles));
}

TEST(RunReport, ReportContentIdenticalForAnyWorkerCount)
{
    // The determinism contract behind committed baselines: --jobs 1 and
    // --jobs N runs of the same sweep must produce identical reports.
    WorkloadParams params;
    params.name = "determinism";
    params.total_mem_instrs = 2000;
    params.per_warp_ws_bytes = 64 * 1024;
    params.write_frac = 0.25;

    auto run_with = [&](unsigned jobs) {
        RunReport report("determinism");
        SweepEngine engine(jobs);
        engine.set_report(&report);
        for (std::uint32_t sms : {4u, 8u}) {
            SystemSetup setup;
            setup.compute_sms = sms;
            engine.add(setup, params, "bl-" + std::to_string(sms));
        }
        for (std::uint32_t cache : {2u, 4u}) {
            SystemSetup setup;
            setup.compute_sms = 4;
            setup.morpheus.enabled = true;
            setup.morpheus.cache_sms = cache;
            engine.add(setup, params, "morpheus-" + std::to_string(cache));
        }
        engine.run_all();
        return report;
    };

    const RunReport serial = run_with(1);
    for (unsigned jobs : {2u, 4u, 8u}) {
        const RunReport parallel = run_with(jobs);
        EXPECT_TRUE(reports_identical(serial, parallel)) << jobs << " workers diverged";
    }
}

// ---------------------------------------------------------------------------
// Schema v2: per-entry status/error (failed grid points)

TEST(RunReportV2, FailedEntriesRoundTrip)
{
    RunReport report("drill");
    ReportEntry &ok = report.add_entry("good");
    ok.set("cycles", 100.0);
    report.add_failed("bad", "injected harness fault: \"quoted\"\nline two");

    ASSERT_EQ(report.entries().size(), 2u);
    EXPECT_TRUE(report.entries()[0].ok());
    EXPECT_FALSE(report.entries()[1].ok());
    EXPECT_TRUE(report.has_failures());

    RunReport parsed;
    std::string error;
    ASSERT_TRUE(RunReport::parse_json(report.to_json(), parsed, error)) << error;
    ASSERT_EQ(parsed.entries().size(), 2u);
    EXPECT_EQ(parsed.entries()[1].status, "failed");
    EXPECT_EQ(parsed.entries()[1].error, "injected harness fault: \"quoted\"\nline two");
    EXPECT_TRUE(reports_identical(report, parsed));
    EXPECT_EQ(report.to_json(), parsed.to_json()); // stable on re-save
}

TEST(RunReportV2, V1ReportsParseWithOkStatus)
{
    // Pre-v2 baselines carry no "status" key; they must keep loading with
    // every entry treated as ok.
    RunReport out;
    std::string error;
    const char *text = "{\"schema_version\": 1, \"scenario\": \"x\","
                       " \"entries\": [{\"label\": \"j\", \"metrics\": {\"m\": 1.0}}]}";
    ASSERT_TRUE(RunReport::parse_json(text, out, error)) << error;
    ASSERT_EQ(out.entries().size(), 1u);
    EXPECT_TRUE(out.entries()[0].ok());
    EXPECT_FALSE(out.has_failures());
}

TEST(RunReportV2, StatusAffectsIdentityAndDiff)
{
    RunReport a("drill");
    a.add_entry("j").set("m", 1.0);
    RunReport b("drill");
    b.add_failed("j", "boom");

    EXPECT_FALSE(reports_identical(a, b));
    const DiffResult diff = diff_reports(a, b, DiffOptions{});
    EXPECT_FALSE(diff.ok());
}

// ---------------------------------------------------------------------------
// Parser hardening

TEST(RunReportParser, RejectsNonFiniteNumbers)
{
    RunReport out;
    std::string error;
    auto with_metric = [](const char *token) {
        return std::string("{\"schema_version\": 2, \"scenario\": \"x\", \"entries\":"
                           " [{\"label\": \"j\", \"metrics\": {\"m\": ") +
               token + "}}]}";
    };
    EXPECT_FALSE(RunReport::parse_json(with_metric("nan"), out, error));
    EXPECT_FALSE(RunReport::parse_json(with_metric("NaN"), out, error));
    EXPECT_FALSE(RunReport::parse_json(with_metric("inf"), out, error));
    EXPECT_FALSE(RunReport::parse_json(with_metric("-inf"), out, error));
    EXPECT_FALSE(RunReport::parse_json(with_metric("Infinity"), out, error));
    EXPECT_FALSE(RunReport::parse_json(with_metric("1e999"), out, error));  // overflows to inf
    EXPECT_FALSE(RunReport::parse_json(with_metric("-1e999"), out, error));
    EXPECT_TRUE(RunReport::parse_json(with_metric("1e308"), out, error)) << error;
    EXPECT_TRUE(RunReport::parse_json(with_metric("-0.5"), out, error)) << error;
}

TEST(RunReportParser, DuplicateKeysLastWins)
{
    RunReport out;
    std::string error;
    const char *text = "{\"schema_version\": 2, \"scenario\": \"first\","
                       " \"scenario\": \"second\", \"entries\":"
                       " [{\"label\": \"j\", \"metrics\": {\"m\": 1.0, \"m\": 2.0}}]}";
    ASSERT_TRUE(RunReport::parse_json(text, out, error)) << error;
    EXPECT_EQ(out.scenario(), "second");
    ASSERT_EQ(out.entries().size(), 1u);
    ASSERT_EQ(out.entries()[0].metrics.size(), 1u); // deduped, last value kept
    EXPECT_EQ(*out.entries()[0].find("m"), 2.0);
}

TEST(RunReportParser, DeeplyNestedInputIsRejectedNotOverflowed)
{
    // 4096 nested arrays inside an ignored key: a recursive-descent parser
    // without a depth gate would exhaust the stack here.
    std::string text = "{\"schema_version\": 2, \"scenario\": \"x\", \"deep\": ";
    for (int i = 0; i < 4096; ++i)
        text += '[';
    for (int i = 0; i < 4096; ++i)
        text += ']';
    text += ", \"entries\": []}";

    RunReport out;
    std::string error;
    EXPECT_FALSE(RunReport::parse_json(text, out, error));
    EXPECT_NE(error.find("nest"), std::string::npos) << error;

    // Mixed object/array nesting hits the same gate.
    std::string objs = "{\"schema_version\": 2, \"scenario\": \"x\", \"deep\": ";
    for (int i = 0; i < 200; ++i)
        objs += "{\"k\": [";
    objs += "1";
    for (int i = 0; i < 200; ++i)
        objs += "]}";
    objs += ", \"entries\": []}";
    EXPECT_FALSE(RunReport::parse_json(objs, out, error));
}

TEST(RunReportParser, FuzzedMutationsNeverCrash)
{
    // Deterministic byte-level fuzzing of a valid report: the parser must
    // accept or reject every mutant without crashing or hanging; accepted
    // mutants must re-serialize (no poisoned internal state).
    const std::string seed_text = sample_report().to_json();
    Rng rng(0xF00DF00Du);
    for (int iter = 0; iter < 2000; ++iter) {
        std::string text = seed_text;
        const int edits = 1 + static_cast<int>(rng.next_below(8));
        for (int e = 0; e < edits; ++e) {
            const std::size_t pos = static_cast<std::size_t>(rng.next_below(text.size()));
            switch (rng.next_below(3)) {
            case 0: // flip to an arbitrary byte
                text[pos] = static_cast<char>(rng.next_below(256));
                break;
            case 1: // delete a byte
                text.erase(pos, 1);
                break;
            default: // truncate (torn write)
                text.resize(pos);
                break;
            }
            if (text.empty())
                break;
        }
        RunReport out;
        std::string error;
        if (RunReport::parse_json(text, out, error))
            (void)out.to_json();
    }
}
