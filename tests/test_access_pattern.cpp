#include <gtest/gtest.h>

#include <set>

#include "workloads/access_pattern.hpp"

using namespace morpheus;

namespace {

PatternGeometry
geom(std::uint64_t shared = 4096, std::uint64_t priv = 64)
{
    PatternGeometry g;
    g.shared_lines = shared;
    g.slice_begin = 0;
    g.slice_lines = shared;
    g.private_begin = shared;
    g.private_lines = priv;
    g.hot_lines = shared / 10;
    return g;
}

} // namespace

TEST(Pattern, StreamProducesConsecutiveLines)
{
    auto g = geom();
    PatternState st;
    LineAddr out[8];
    const auto n = generate_lines(PatternKind::kStreamShared, g, st, nullptr, out, 4);
    ASSERT_EQ(n, 4u);
    for (std::uint32_t i = 1; i < n; ++i)
        EXPECT_EQ(out[i], (out[0] + i) % g.shared_lines);
}

TEST(Pattern, StencilTouchesNeighborRows)
{
    auto g = geom();
    g.stencil_row = 64;
    PatternState st;
    LineAddr out[8];
    const auto n = generate_lines(PatternKind::kStencil, g, st, nullptr, out, 3);
    ASSERT_EQ(n, 3u);
    EXPECT_EQ(out[1], (out[0] + 64) % g.shared_lines);
    EXPECT_EQ(out[2], (out[0] + g.shared_lines - 64) % g.shared_lines);
}

TEST(Pattern, PrivateLoopIsCyclicOverPrivateRegion)
{
    auto g = geom(4096, 8);
    g.hot_lines = 0;  // disable hot branch
    PatternState st;
    LineAddr out[8];
    std::vector<LineAddr> seq;
    for (int i = 0; i < 16; ++i) {
        generate_lines(PatternKind::kPrivateLoop, g, st, nullptr, out, 1);
        seq.push_back(out[0]);
    }
    // Two exact passes over the 8-line private region.
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(seq[static_cast<std::size_t>(i)], g.private_begin + i);
        EXPECT_EQ(seq[static_cast<std::size_t>(i + 8)], seq[static_cast<std::size_t>(i)]);
    }
}

TEST(Pattern, AllLinesStayInBounds)
{
    auto g = geom();
    PatternState st;
    LineAddr out[8];
    for (PatternKind kind :
         {PatternKind::kStreamShared, PatternKind::kStencil, PatternKind::kTiledReuse,
          PatternKind::kZipfGraph, PatternKind::kPrivateLoop, PatternKind::kHistoAtomic,
          PatternKind::kRandomScatter}) {
        for (int i = 0; i < 500; ++i) {
            const auto n = generate_lines(kind, g, st, nullptr, out, 4);
            ASSERT_GE(n, 1u);
            for (std::uint32_t j = 0; j < n; ++j) {
                ASSERT_LT(out[j], g.private_begin + g.private_lines)
                    << pattern_name(kind);
            }
        }
    }
}

TEST(Pattern, HotReuseBranchTargetsHotPrefix)
{
    auto g = geom();
    g.reuse_frac = 1.0;  // always hot
    PatternState st;
    LineAddr out[8];
    for (int i = 0; i < 200; ++i) {
        const auto n = generate_lines(PatternKind::kStreamShared, g, st, nullptr, out, 4);
        ASSERT_EQ(n, 1u);
        ASSERT_LT(out[0], g.hot_lines);
    }
}

TEST(Pattern, PrivateFracMixesPrivateTraffic)
{
    auto g = geom(4096, 32);
    g.hot_lines = 0;
    g.private_frac = 1.0;
    PatternState st;
    LineAddr out[8];
    for (int i = 0; i < 100; ++i) {
        generate_lines(PatternKind::kStreamShared, g, st, nullptr, out, 1);
        ASSERT_GE(out[0], g.private_begin);
    }
}

TEST(Pattern, TiledReuseRevisitsTileLines)
{
    auto g = geom();
    g.hot_lines = 0;
    g.tile_lines = 16;
    g.tile_reuse = 8;
    PatternState st;
    LineAddr out[8];
    std::set<LineAddr> touched;
    for (int i = 0; i < 128; ++i) {  // one full tile epoch
        generate_lines(PatternKind::kTiledReuse, g, st, nullptr, out, 1);
        touched.insert(out[0]);
    }
    // 128 accesses landed on at most a tile's worth of distinct lines.
    EXPECT_LE(touched.size(), 16u);
}

TEST(Pattern, DeterministicGivenState)
{
    auto g = geom();
    PatternState a;
    PatternState b;
    a.rng.reseed(5);
    b.rng.reseed(5);
    LineAddr oa[8];
    LineAddr ob[8];
    for (int i = 0; i < 100; ++i) {
        const auto na = generate_lines(PatternKind::kRandomScatter, g, a, nullptr, oa, 4);
        const auto nb = generate_lines(PatternKind::kRandomScatter, g, b, nullptr, ob, 4);
        ASSERT_EQ(na, nb);
        for (std::uint32_t j = 0; j < na; ++j)
            ASSERT_EQ(oa[j], ob[j]);
    }
}
