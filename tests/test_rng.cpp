#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/rng.hpp"

using namespace morpheus;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next_u64() == b.next_u64();
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10'000; ++i)
        EXPECT_LT(rng.next_below(97), 97u);
}

TEST(Rng, NextBelowIsRoughlyUniform)
{
    Rng rng(13);
    constexpr int kBuckets = 16;
    constexpr int kSamples = 160'000;
    int counts[kBuckets] = {};
    for (int i = 0; i < kSamples; ++i)
        ++counts[rng.next_below(kBuckets)];
    for (int c : counts) {
        EXPECT_GT(c, kSamples / kBuckets * 0.9);
        EXPECT_LT(c, kSamples / kBuckets * 1.1);
    }
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(3);
    double sum = 0;
    for (int i = 0; i < 10'000; ++i) {
        const double v = rng.next_double();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Zipf, SamplesAreSkewedTowardLowRanks)
{
    Rng rng(11);
    ZipfSampler zipf(10'000, 0.9);
    std::uint64_t head = 0;
    constexpr int kSamples = 50'000;
    for (int i = 0; i < kSamples; ++i) {
        if (zipf.sample(rng) < 100)
            ++head;
    }
    // The first 1% of ranks should capture far more than 1% of samples.
    EXPECT_GT(head, kSamples / 20u);
}

TEST(Zipf, SamplesStayInRange)
{
    Rng rng(5);
    for (double alpha : {0.3, 0.8, 1.0, 1.3}) {
        ZipfSampler zipf(1000, alpha);
        for (int i = 0; i < 5'000; ++i)
            ASSERT_LT(zipf.sample(rng), 1000u) << "alpha=" << alpha;
    }
}

TEST(Mix64, IsDeterministicAndSpreads)
{
    EXPECT_EQ(mix64(1), mix64(1));
    std::vector<std::uint64_t> tops;
    for (std::uint64_t i = 0; i < 64; ++i)
        tops.push_back(mix64(i) >> 58);
    std::sort(tops.begin(), tops.end());
    tops.erase(std::unique(tops.begin(), tops.end()), tops.end());
    EXPECT_GT(tops.size(), 30u);
}
