#include <gtest/gtest.h>

#include <unordered_map>

#include "gpu/gpu_system.hpp"
#include "morpheus/morpheus_controller.hpp"
#include "sim/rng.hpp"
#include "test_util.hpp"
#include "workloads/synthetic_workload.hpp"

using namespace morpheus;

namespace {

/**
 * End-to-end read-your-writes property: drive random read/write/atomic
 * traffic through the FULL hierarchy (L1 -> NoC -> Morpheus controller ->
 * conventional LLC / extended LLC / DRAM) from a single logical client,
 * with each access issued only after the previous completed, and assert
 * that every read returns the version of the latest write to that line.
 *
 * This is exactly the correctness property the paper's predictor design
 * protects: one false negative on a dirty extended-LLC line would surface
 * here as a stale (smaller) version from DRAM.
 */
struct CorrectnessRig
{
    WorkloadParams params;
    SyntheticWorkload workload{[] {
        WorkloadParams p;
        p.name = "correctness";
        p.total_mem_instrs = 0;
        return p;
    }()};
    std::unique_ptr<GpuSystem> sys;

    explicit CorrectnessRig(bool morpheus_on, PredictionMode mode, bool compression)
    {
        SystemSetup setup;
        setup.compute_sms = 4;
        setup.cfg.blocking_writes = true;
        setup.morpheus.enabled = morpheus_on;
        setup.morpheus.cache_sms = morpheus_on ? 6 : 0;
        setup.morpheus.prediction = mode;
        setup.morpheus.kernel.compression = compression;
        sys = std::make_unique<GpuSystem>(setup, workload);
    }

    std::uint64_t
    access(LineAddr line, AccessType type)
    {
        std::uint64_t seen = 0;
        std::uint64_t wv = 0;
        if (type != AccessType::kRead)
            wv = sys->store().next_version();
        MemRequest req{line, type, 0, wv};
        sys->to_llc(sys->event_queue().now(), req,
                    [&](Cycle, std::uint64_t v) { seen = v; });
        sys->event_queue().run();
        return type == AccessType::kRead ? seen : wv;
    }

    void
    run_random_traffic(std::uint64_t seed, int steps, std::uint64_t footprint_lines)
    {
        Rng rng(seed);
        std::unordered_map<LineAddr, std::uint64_t> expected;
        for (int i = 0; i < steps; ++i) {
            const LineAddr line = rng.next_below(footprint_lines);
            const double roll = rng.next_double();
            if (roll < 0.35) {
                const std::uint64_t v = access(line, AccessType::kWrite);
                expected[line] = v;
            } else if (roll < 0.45) {
                const std::uint64_t v = access(line, AccessType::kAtomic);
                expected[line] = v;
            } else {
                const std::uint64_t seen = access(line, AccessType::kRead);
                const auto it = expected.find(line);
                const std::uint64_t want = it == expected.end() ? 0 : it->second;
                ASSERT_EQ(seen, want)
                    << "stale data for line " << line << " at step " << i;
            }
        }
    }
};

struct Config
{
    const char *name;
    bool morpheus;
    PredictionMode mode;
    bool compression;
};

class ReadYourWrites : public ::testing::TestWithParam<Config>
{
};

} // namespace

TEST_P(ReadYourWrites, RandomTrafficNeverReturnsStaleData)
{
    const Config &cfg = GetParam();
    CorrectnessRig rig(cfg.morpheus, cfg.mode, cfg.compression);
    // Footprint sized to force constant eviction/refill churn through
    // every structure, including dirty writebacks from the extended LLC.
    rig.run_random_traffic(0xC0FFEE, 2500, 3000);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ReadYourWrites,
    ::testing::Values(Config{"conventional", false, PredictionMode::kBloom, false},
                      Config{"morpheus_bloom", true, PredictionMode::kBloom, false},
                      Config{"morpheus_bloom_comp", true, PredictionMode::kBloom, true},
                      Config{"morpheus_nopred", true, PredictionMode::kNone, false},
                      Config{"morpheus_perfect", true, PredictionMode::kPerfect, true}),
    [](const ::testing::TestParamInfo<Config> &info) { return info.param.name; });

TEST(ReadYourWritesTiny, SmallFootprintStressesExtendedSets)
{
    // A tiny footprint hammers few extended sets, exercising the BF1/BF2
    // swap machinery many times over.
    CorrectnessRig rig(true, PredictionMode::kBloom, true);
    rig.run_random_traffic(0xBEEF, 2000, 64);
}

TEST(ReadYourWritesSeeds, MultipleSeeds)
{
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        CorrectnessRig rig(true, PredictionMode::kBloom, false);
        rig.run_random_traffic(seed, 800, 1500);
    }
}

TEST(PredictedMissWritePropagation, SequentialWriteThenReadOnExtendedLines)
{
    // The predicted-miss fast path answers from DRAM and only *queues*
    // the (possibly dirty) block for insertion. A read issued after a
    // write to the same extended line must still observe the written
    // version: the insert task is queued on the same warp-set FIFO as the
    // read, so it installs before the read is served.
    CorrectnessRig rig(true, PredictionMode::kBloom, false);
    ExtendedLlc *ext = rig.sys->extended_llc();

    int covered = 0;
    for (LineAddr line = 0; line < 6000 && covered < 64; ++line) {
        if (!ext->is_extended(line))
            continue;
        ++covered;
        const std::uint64_t written = rig.access(line, AccessType::kWrite);
        const std::uint64_t seen = rig.access(line, AccessType::kRead);
        ASSERT_EQ(seen, written) << "stale read after write to extended line " << line;
    }
    ASSERT_GT(covered, 0);
}

TEST(PredictedMissWritePropagation, DirtyBlockBypassingTheSetReachesMemory)
{
    // Regression: a dirty insertion that finds no compatible slot
    // bypasses the extended set; its version is the only up-to-date copy
    // and must be written back, or the next fetch serves the stale
    // pre-write data. A 32-byte L1-backed set (smaller than one line)
    // bypasses every insertion.
    test::TestFabric fabric;
    std::vector<std::unique_ptr<LlcPartition>> partitions;
    for (std::uint32_t p = 0; p < fabric.cfg.llc_partitions; ++p) {
        partitions.push_back(
            std::make_unique<LlcPartition>(p, fabric.ctx(), 256, 16, 90, 4, 2));
    }
    WorkloadParams wp;
    wp.name = "bypass-test";
    SyntheticWorkload wl(wp);
    ExtLlcParams params;
    params.rf_warps = 0;
    params.l1_warps = 1;
    params.smem_warps = 0;
    CacheModeSm sm(10, fabric.ctx(), params, fabric.cfg.rf_bytes, /*l1_bytes=*/32, &wl,
                   &partitions);
    ASSERT_EQ(sm.set_max_blocks(0), 0u) << "set unexpectedly fits a block";

    // The controller's predicted-miss write path: respond immediately,
    // queue the dirty block for insertion.
    const LineAddr line = 5;
    const std::uint64_t version = 7;
    sm.enqueue_insert(fabric.eq.now(), 0, line, version, /*dirty=*/true);
    fabric.eq.run();

    EXPECT_EQ(fabric.store.read(line), version)
        << "dirty bypassed block never reached the backing store";

    // And a subsequent read (a predictor false positive on the bypassed
    // line) must fetch the written version, not the pre-write one.
    std::uint64_t seen = ~0ull;
    MemRequest req{line, AccessType::kRead, 0, 0};
    sm.enqueue_request(fabric.eq.now(), 0, req,
                       [&](Cycle, std::uint64_t v, bool) { seen = v; });
    fabric.eq.run();
    EXPECT_EQ(seen, version);
}
