/**
 * @file
 * Streaming trace IO guarantees (trace_reader/trace_writer):
 *  - TraceFileWriter output is byte-identical to Trace::encode() of the
 *    equivalent materialized trace (one canonical encoding);
 *  - streaming replay (TraceWorkload over a TraceReader) produces a
 *    RunResult identical to materialized replay of the same file;
 *  - TraceReader::stats matches Trace::stats;
 *  - the headline scaling claim: replaying a generated >100 MB trace
 *    keeps peak trace-resident HEAP memory bounded by a small constant
 *    (the file itself is memory-mapped, records are decoded one at a
 *    time) — pinned by a global operator-new tracker in this binary.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#if defined(__linux__)
#include <malloc.h>
#define TRACKED_SIZE(p, n) malloc_usable_size(p)
#else
#define TRACKED_SIZE(p, n) (n)
#endif

#include "harness/runner.hpp"
#include "harness/sweep_engine.hpp"
#include "workloads/synthetic_workload.hpp"
#include "workloads/trace/trace_reader.hpp"
#include "workloads/trace/trace_recorder.hpp"
#include "workloads/trace/trace_workload.hpp"
#include "workloads/trace/trace_writer.hpp"

// ---------------------------------------------------------------------------
// Heap tracker: every (non-aligned) global new/delete in this binary is
// counted, so tests can assert a bound on peak live heap across a region.
// ---------------------------------------------------------------------------

namespace {

std::atomic<std::uint64_t> g_live_bytes{0};
std::atomic<std::uint64_t> g_peak_bytes{0};

void
track_alloc(void *p, [[maybe_unused]] std::size_t n)
{
    const std::uint64_t live =
        g_live_bytes.fetch_add(TRACKED_SIZE(p, n), std::memory_order_relaxed) +
        TRACKED_SIZE(p, n);
    std::uint64_t peak = g_peak_bytes.load(std::memory_order_relaxed);
    while (live > peak && !g_peak_bytes.compare_exchange_weak(peak, live))
        ;
}

void
track_free(void *p, [[maybe_unused]] std::size_t n)
{
    if (p)
        g_live_bytes.fetch_sub(TRACKED_SIZE(p, n), std::memory_order_relaxed);
}

/** Resets the peak to the current live size and returns the live size. */
std::uint64_t
reset_peak()
{
    const std::uint64_t live = g_live_bytes.load();
    g_peak_bytes.store(live);
    return live;
}

} // namespace

void *
operator new(std::size_t n)
{
    void *p = std::malloc(n ? n : 1);
    if (!p)
        throw std::bad_alloc();
    track_alloc(p, n);
    return p;
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void *p) noexcept
{
    track_free(p, 0);
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    ::operator delete(p);
}

void
operator delete(void *p, std::size_t n) noexcept
{
    track_free(p, n);
    std::free(p);
}

void
operator delete[](void *p, std::size_t n) noexcept
{
    track_free(p, n);
    std::free(p);
}

using namespace morpheus;

namespace {

constexpr std::uint32_t kSms = 3;

WorkloadParams
small_params()
{
    WorkloadParams params;
    params.name = "stream-test";
    params.pattern = PatternKind::kStreamShared;
    params.warps_per_sm = 6;
    params.total_mem_instrs = 4000;
    params.shared_ws_bytes = 1 << 20;
    params.per_warp_ws_bytes = 32 * 1024;
    params.private_frac = 0.3;
    params.reuse_frac = 0.25;
    params.write_frac = 0.2;
    params.atomic_frac = 0.05;
    params.lines_per_mem = 3;
    return params;
}

SystemSetup
morpheus_test_setup()
{
    SystemSetup setup;
    setup.compute_sms = kSms;
    setup.morpheus.enabled = true;
    setup.morpheus.cache_sms = 4;
    setup.morpheus.kernel.compression = true;
    setup.morpheus.prediction = PredictionMode::kBloom;
    return setup;
}

trace::Trace
recorded_trace()
{
    const WorkloadParams params = small_params();
    SyntheticWorkload workload(params);
    return trace::record_trace(workload, kSms, &params.data);
}

/** Writes @p t through the streaming writer (not Trace::save_file). */
void
write_via_writer(const trace::Trace &t, const std::string &path)
{
    trace::TraceFileWriter::Header header;
    header.name = t.name;
    header.num_sms = t.num_sms;
    header.warps_per_sm = t.warps_per_sm;
    header.rle = t.rle;
    header.has_profile = t.has_profile;
    header.profile = t.profile;

    trace::TraceFileWriter writer;
    std::string error;
    ASSERT_TRUE(writer.open(path, header, t.streams.size(), error)) << error;
    for (const auto &stream : t.streams) {
        ASSERT_TRUE(writer.begin_stream(stream.sm, stream.warp, error)) << error;
        for (const auto &step : stream.steps)
            ASSERT_TRUE(writer.add_step(step, error)) << error;
        ASSERT_TRUE(writer.end_stream(error)) << error;
    }
    ASSERT_TRUE(writer.close(error)) << error;
}

std::vector<std::uint8_t>
file_bytes(const std::string &path)
{
    std::vector<std::uint8_t> bytes;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    if (!f)
        return bytes;
    std::uint8_t buf[64 * 1024];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(f);
    return bytes;
}

} // namespace

TEST(TraceStream, WriterMatchesMaterializedEncodeByteForByte)
{
    trace::Trace t = recorded_trace();
    for (bool rle : {true, false}) {
        t.rle = rle;
        const std::string path = ::testing::TempDir() + "/writer_canonical.mtrc";
        write_via_writer(t, path);
        EXPECT_EQ(file_bytes(path), t.encode()) << "rle=" << rle;
        std::remove(path.c_str());
    }
}

TEST(TraceStream, ReaderStatsMatchMaterializedStats)
{
    const trace::Trace t = recorded_trace();
    const std::string path = ::testing::TempDir() + "/stats.mtrc";
    std::string error;
    ASSERT_TRUE(t.save_file(path, error)) << error;

    trace::TraceReader reader;
    ASSERT_TRUE(reader.open(path, error)) << error;
    EXPECT_EQ(reader.version(), trace::kFormatVersion);
    EXPECT_EQ(reader.num_sms(), t.num_sms);
    EXPECT_EQ(reader.warps_per_sm(), t.warps_per_sm);
    EXPECT_EQ(reader.total_records(), t.total_records());

    trace::TraceStats streamed;
    ASSERT_TRUE(reader.stats(streamed, error)) << error;
    const trace::TraceStats materialized = t.stats();
    EXPECT_EQ(streamed.records, materialized.records);
    EXPECT_EQ(streamed.mem_records, materialized.mem_records);
    EXPECT_EQ(streamed.lines, materialized.lines);
    EXPECT_EQ(streamed.reads, materialized.reads);
    EXPECT_EQ(streamed.writes, materialized.writes);
    EXPECT_EQ(streamed.atomics, materialized.atomics);
    EXPECT_EQ(streamed.alu_instrs, materialized.alu_instrs);
    for (int c = 0; c < 4; ++c)
        EXPECT_EQ(streamed.class_counts[c], materialized.class_counts[c]) << c;
    EXPECT_EQ(streamed.unique_lines, materialized.unique_lines);
    EXPECT_EQ(streamed.empty_streams, materialized.empty_streams);
    EXPECT_EQ(streamed.class_collisions, materialized.class_collisions);
    std::remove(path.c_str());
}

TEST(TraceStream, StreamingReplayIdenticalToMaterializedReplay)
{
    trace::Trace t = recorded_trace();
    const std::string path = ::testing::TempDir() + "/replay_equiv.mtrc";
    std::string error;

    // Both with the embedded profile and profile-less (the per-line class
    // fallback) — the two synthesize_block code paths.
    for (bool with_profile : {true, false}) {
        t.has_profile = with_profile;
        ASSERT_TRUE(t.save_file(path, error)) << error;

        trace::Trace loaded;
        ASSERT_TRUE(trace::Trace::load_file(path, loaded, error)) << error;
        TraceWorkload materialized(loaded);

        trace::TraceReader reader;
        ASSERT_TRUE(reader.open(path, error)) << error;
        TraceWorkload streaming(reader);
        EXPECT_TRUE(streaming.streaming());
        EXPECT_FALSE(materialized.streaming());

        const RunResult a = run_workload(morpheus_test_setup(), materialized);
        const RunResult b = run_workload(morpheus_test_setup(), streaming);
        EXPECT_TRUE(run_results_identical(a, b))
            << "profile=" << with_profile << ": cycles " << a.cycles << " vs " << b.cycles;
        std::remove(path.c_str());
    }
}

TEST(TraceStream, RejectsCorruptFilesAtOpen)
{
    const trace::Trace t = recorded_trace();
    const std::string path = ::testing::TempDir() + "/corrupt.mtrc";
    std::string error;
    ASSERT_TRUE(t.save_file(path, error)) << error;
    auto bytes = file_bytes(path);

    // Truncations and a payload bit-flip must fail at open(), not during
    // replay: the validation pass walks every record up front.
    for (std::size_t len : {std::size_t{0}, std::size_t{5}, bytes.size() / 2,
                            bytes.size() - 1}) {
        const std::string cut = ::testing::TempDir() + "/corrupt_cut.mtrc";
        std::FILE *f = std::fopen(cut.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        if (len)
            std::fwrite(bytes.data(), 1, len, f);
        std::fclose(f);
        trace::TraceReader reader;
        error.clear();
        EXPECT_FALSE(reader.open(cut, error)) << "prefix " << len;
        EXPECT_FALSE(error.empty());
        std::remove(cut.c_str());
    }
    std::remove(path.c_str());
}

TEST(TraceStream, LargeTraceReplaysWithBoundedHeap)
{
    // Generate a >100 MB trace through the streaming writer (which itself
    // holds only one stream's payload), then stream-replay it and pin the
    // peak tracked-heap growth. The trace: 128 streams x 11k records x
    // 8 wide-delta lines -> ~75 encoded bytes per record, RLE off so the
    // file size equals the payload size.
    const std::string path = ::testing::TempDir() + "/large.mtrc";
    constexpr std::uint32_t kBigSms = 16;
    constexpr std::uint32_t kWarps = 8;
    constexpr std::uint32_t kRecordsPerStream = 12500;

    {
        trace::TraceFileWriter::Header header;
        header.name = "large-synthetic";
        header.num_sms = kBigSms;
        header.warps_per_sm = kWarps;
        header.rle = false;
        header.has_profile = false;

        trace::TraceFileWriter writer;
        std::string error;
        ASSERT_TRUE(writer.open(path, header, kBigSms * kWarps, error)) << error;
        for (std::uint32_t sm = 0; sm < kBigSms; ++sm) {
            for (std::uint32_t warp = 0; warp < kWarps; ++warp) {
                ASSERT_TRUE(writer.begin_stream(sm, warp, error)) << error;
                std::uint64_t pc = 0;
                trace::TraceStep step;
                for (std::uint32_t r = 0; r < kRecordsPerStream; ++r) {
                    step.pc = pc;
                    pc += 8 * 4;
                    step.alu_instrs = 3;
                    step.type = AccessType::kRead;
                    step.num_lines = WarpStep::kMaxLinesPerInst;
                    for (std::uint32_t l = 0; l < step.num_lines; ++l) {
                        // Alternating wide jumps -> ~9-byte zigzag varints,
                        // so each record encodes to ~75 bytes.
                        const std::uint64_t wide = 1ULL << 59;
                        step.lines[l] = (r + l) % 2 ? wide + r + l : r + l;
                        step.cls[l] = trace::kClassUnknown;
                    }
                    ASSERT_TRUE(writer.add_step(step, error)) << error;
                }
                ASSERT_TRUE(writer.end_stream(error)) << error;
            }
        }
        ASSERT_TRUE(writer.close(error)) << error;
        EXPECT_EQ(writer.records_written(),
                  static_cast<std::uint64_t>(kBigSms) * kWarps * kRecordsPerStream);
    }

    std::size_t file_size = 0;
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 0, SEEK_END);
        file_size = static_cast<std::size_t>(std::ftell(f));
        std::fclose(f);
    }
    ASSERT_GE(file_size, 100u * 1024 * 1024) << "test trace too small";

    // ---- measured region: open (validates every record), build the
    // workload, and drain every stream to completion. ----
    const std::uint64_t live_before = reset_peak();

    trace::TraceReader reader;
    std::string error;
    ASSERT_TRUE(reader.open(path, error)) << error;

    TraceWorkload workload(reader);
    workload.configure(kBigSms);
    std::uint64_t drained = 0;
    WarpStep out;
    for (std::uint32_t sm = 0; sm < kBigSms; ++sm) {
        const std::uint32_t warps = workload.warps_on(sm);
        for (std::uint32_t warp = 0; warp < warps; ++warp) {
            while (workload.next_step(sm, warp, out))
                ++drained;
        }
    }
    EXPECT_EQ(drained, static_cast<std::uint64_t>(kBigSms) * kWarps * kRecordsPerStream);

    const std::uint64_t peak = g_peak_bytes.load();
    const std::uint64_t growth = peak - live_before;

    // The bound: a small constant, nowhere near the file (or record)
    // size. 4 MiB is ~1/25th of the file and leaves slack for allocator
    // rounding; materializing would need >100 MB of TraceStep storage.
    EXPECT_LT(growth, 4u * 1024 * 1024)
        << "peak heap growth " << growth << " bytes for a " << file_size << "-byte trace";
    std::remove(path.c_str());
}

TEST(TraceStream, EmptyStreamsReplayAsRetiredWarps)
{
    // A --keep 0 downsample leaves every stream present but empty; the
    // streaming replay must treat each as a warp that retires without
    // issuing (well-defined, no asserts), matching materialized replay.
    trace::Trace t = recorded_trace();
    trace::downsample_trace(t, 0.0);
    ASSERT_EQ(t.total_records(), 0u);
    const std::string path = ::testing::TempDir() + "/empty_streams.mtrc";
    std::string error;
    ASSERT_TRUE(t.save_file(path, error)) << error;

    trace::TraceReader reader;
    ASSERT_TRUE(reader.open(path, error)) << error;
    trace::TraceStats st;
    ASSERT_TRUE(reader.stats(st, error)) << error;
    EXPECT_EQ(st.records, 0u);
    EXPECT_EQ(st.empty_streams, reader.stream_count());
    ASSERT_GT(reader.stream_count(), 0u);

    TraceWorkload streaming(reader);
    const RunResult a = run_workload(morpheus_test_setup(), streaming);

    trace::Trace loaded;
    ASSERT_TRUE(trace::Trace::load_file(path, loaded, error)) << error;
    TraceWorkload materialized(loaded);
    const RunResult b = run_workload(morpheus_test_setup(), materialized);
    EXPECT_TRUE(run_results_identical(a, b));
    EXPECT_EQ(a.instructions, 0u);
    std::remove(path.c_str());
}
