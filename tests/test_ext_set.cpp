#include <gtest/gtest.h>

#include "morpheus/extended_llc_kernel.hpp"
#include "sim/rng.hpp"

using namespace morpheus;

namespace {
constexpr std::uint32_t kBudget = 32 * kLineBytes;  // 32 uncompressed slots
}

TEST(ExtSet, MissesWhenEmpty)
{
    ExtSet set(kBudget, false, 10'000);
    std::uint64_t v;
    CompLevel lvl;
    EXPECT_FALSE(set.touch_read(0, 1, v, lvl));
    EXPECT_EQ(set.resident(), 0u);
}

TEST(ExtSet, InsertThenRead)
{
    ExtSet set(kBudget, false, 10'000);
    std::vector<ExtSet::Evicted> ev;
    EXPECT_TRUE(set.insert(0, 7, 5, false, CompLevel::kUncompressed, ev));
    std::uint64_t v;
    CompLevel lvl;
    ASSERT_TRUE(set.touch_read(1, 7, v, lvl));
    EXPECT_EQ(v, 5u);
    EXPECT_TRUE(ev.empty());
}

TEST(ExtSet, WithoutCompressionMaxBlocksIsBudgetOverLine)
{
    ExtSet set(kBudget, false, 10'000);
    EXPECT_EQ(set.max_blocks(), 32u);
    ExtSet cset(kBudget, true, 10'000);
    EXPECT_EQ(cset.max_blocks(), 128u);  // all-high packing
}

TEST(ExtSet, EvictsGlobalLruWhenFull)
{
    ExtSet set(4 * kLineBytes, false, 10'000);
    std::vector<ExtSet::Evicted> ev;
    for (LineAddr l = 0; l < 4; ++l)
        set.insert(l, l, l, false, CompLevel::kUncompressed, ev);
    std::uint64_t v;
    CompLevel lvl;
    set.touch_read(10, 0, v, lvl);  // line 1 is now LRU
    set.insert(11, 99, 1, false, CompLevel::kUncompressed, ev);
    EXPECT_FALSE(set.contains(1));
    EXPECT_TRUE(set.contains(0));
    EXPECT_TRUE(set.contains(99));
}

TEST(ExtSet, DirtyEvictionsAreReported)
{
    ExtSet set(2 * kLineBytes, false, 10'000);
    std::vector<ExtSet::Evicted> ev;
    set.insert(0, 1, 10, true, CompLevel::kUncompressed, ev);
    set.insert(1, 2, 0, false, CompLevel::kUncompressed, ev);
    set.insert(2, 3, 0, false, CompLevel::kUncompressed, ev);
    ASSERT_EQ(ev.size(), 1u);
    EXPECT_EQ(ev[0].line, 1u);
    EXPECT_EQ(ev[0].version, 10u);
}

TEST(ExtSet, WriteTouchDirties)
{
    ExtSet set(kBudget, false, 10'000);
    std::vector<ExtSet::Evicted> ev;
    set.insert(0, 4, 1, false, CompLevel::kUncompressed, ev);
    EXPECT_TRUE(set.touch_write(1, 4, 8));
    // Evict it: the writeback must carry version 8.
    for (LineAddr l = 100; l < 164; ++l)
        set.insert(2, l, 0, false, CompLevel::kUncompressed, ev);
    bool found = false;
    for (const auto &e : ev) {
        if (e.line == 4) {
            found = true;
            EXPECT_EQ(e.version, 8u);
        }
    }
    EXPECT_TRUE(found);
}

TEST(ExtSet, CompressionPacksMoreBlocks)
{
    // With compression, high-level blocks occupy 32-byte slots after the
    // first epoch rebalances the allocation toward observed demand.
    ExtSet set(kBudget, true, 100);
    std::vector<ExtSet::Evicted> ev;
    Cycle now = 0;
    for (LineAddr l = 0; l < 200; ++l) {
        set.insert(now, l, 1, false, CompLevel::kHigh, ev);
        now += 10;  // crosses many epochs
    }
    EXPECT_GT(set.resident(), 32u);  // beats the uncompressed capacity
    EXPECT_LE(set.resident(), set.max_blocks());
}

TEST(ExtSet, UncompressedInsertsIgnoreLevelWhenDisabled)
{
    ExtSet set(kBudget, false, 10'000);
    std::vector<ExtSet::Evicted> ev;
    for (LineAddr l = 0; l < 64; ++l)
        set.insert(0, l, 1, false, CompLevel::kHigh, ev);
    EXPECT_EQ(set.resident(), 32u);  // each still occupies a full slot
}

TEST(ExtSet, RacedRefillRefreshesInPlace)
{
    ExtSet set(kBudget, false, 10'000);
    std::vector<ExtSet::Evicted> ev;
    set.insert(0, 5, 3, false, CompLevel::kUncompressed, ev);
    set.insert(1, 5, 9, true, CompLevel::kUncompressed, ev);
    EXPECT_EQ(set.resident(), 1u);
    std::uint64_t v;
    CompLevel lvl;
    set.touch_read(2, 5, v, lvl);
    EXPECT_EQ(v, 9u);
}

TEST(ExtSet, MixedLevelTrafficStaysWithinBudget)
{
    ExtSet set(kBudget, true, 500);
    std::vector<ExtSet::Evicted> ev;
    Rng rng(3);
    Cycle now = 0;
    for (int i = 0; i < 5000; ++i) {
        const auto level = static_cast<CompLevel>(rng.next_below(3));
        set.insert(now, rng.next_below(512), 1, rng.chance(0.3), level, ev);
        now += 7;
    }
    // Invariant: resident blocks can never exceed the all-high packing.
    EXPECT_LE(set.resident(), set.max_blocks());
}
