#include <gtest/gtest.h>

#include "gpu/gpu_system.hpp"
#include "workloads/synthetic_workload.hpp"

using namespace morpheus;

namespace {

WorkloadParams
small_app(std::uint64_t ws_bytes, std::uint32_t alu)
{
    WorkloadParams p;
    p.name = "int-test";
    p.alu_per_mem = alu;
    p.lines_per_mem = 2;
    p.shared_ws_bytes = ws_bytes;
    p.warps_per_sm = 16;
    p.total_mem_instrs = 12'000;
    return p;
}

RunResult
run(const WorkloadParams &params, std::uint32_t sms, std::uint64_t llc_bytes = 0)
{
    SyntheticWorkload wl(params);
    SystemSetup setup;
    setup.compute_sms = sms;
    if (llc_bytes)
        setup.cfg.llc_bytes = llc_bytes;
    GpuSystem sys(setup, wl);
    return sys.run();
}

} // namespace

TEST(GpuIntegration, RunCompletesAndCountsInstructions)
{
    const RunResult r = run(small_app(1 << 20, 4), 8);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GE(r.instructions, 12'000u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_EQ(r.ext_requests, 0u);  // Morpheus off
}

TEST(GpuIntegration, DeterministicAcrossRuns)
{
    const WorkloadParams p = small_app(1 << 20, 4);
    const RunResult a = run(p, 8);
    const RunResult b = run(p, 8);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.dram_reads, b.dram_reads);
}

TEST(GpuIntegration, MoreSmsHelpComputeBoundLinearly)
{
    WorkloadParams p = small_app(256 << 10, 48);
    p.total_mem_instrs = 6'000;
    const RunResult r4 = run(p, 4);
    const RunResult r16 = run(p, 16);
    const double speedup = static_cast<double>(r4.cycles) / static_cast<double>(r16.cycles);
    EXPECT_GT(speedup, 2.5);  // near-linear 4x
}

TEST(GpuIntegration, SmallWorkingSetHitsInLlc)
{
    const RunResult small = run(small_app(1 << 20, 2), 16);
    const RunResult big = run(small_app(32 << 20, 2), 16);
    const double small_miss =
        static_cast<double>(small.dram_reads) / static_cast<double>(small.llc_accesses);
    const double big_miss =
        static_cast<double>(big.dram_reads) / static_cast<double>(big.llc_accesses);
    EXPECT_LT(small_miss, big_miss * 0.7);
    EXPECT_LT(small.cycles, big.cycles);
}

TEST(GpuIntegration, BiggerLlcHelpsOverflowingWorkingSet)
{
    WorkloadParams p = small_app(12 << 20, 2);
    p.total_mem_instrs = 60'000;  // several reuse passes
    const RunResult base = run(p, 32);
    const RunResult big = run(p, 32, 20ULL << 20);
    EXPECT_LT(static_cast<double>(big.cycles), static_cast<double>(base.cycles) * 0.95);
    EXPECT_LT(big.dram_reads, base.dram_reads);
}

TEST(GpuIntegration, MemoryBoundWorkloadSaturatesDram)
{
    WorkloadParams p = small_app(24 << 20, 1);
    p.total_mem_instrs = 40'000;
    const RunResult r = run(p, 64);
    EXPECT_GT(r.dram_utilization, 0.5);
}

TEST(GpuIntegration, EnergyAccountsForRuntimeAndTraffic)
{
    const RunResult r = run(small_app(4 << 20, 4), 16);
    EXPECT_GT(r.energy.total_j(), 0.0);
    EXPECT_GT(r.energy.dram_j, 0.0);
    EXPECT_GT(r.energy.static_j, 0.0);
    EXPECT_GT(r.avg_watts, 50.0);
    EXPECT_LT(r.avg_watts, 600.0);
    EXPECT_EQ(r.energy.controller_j, 0.0);  // Morpheus off
}

TEST(GpuIntegration, NocStatsPopulated)
{
    const RunResult r = run(small_app(8 << 20, 2), 16);
    EXPECT_GT(r.noc_bytes, 0u);
    EXPECT_GT(r.noc_injection_rate, 0.0);
    EXPECT_GT(r.noc_avg_latency, 0.0);
}
