#include <gtest/gtest.h>

#include <sstream>

#include "harness/runner.hpp"
#include "harness/table.hpp"

using namespace morpheus;

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.add_row({"a", "1"});
    t.add_row({"longer-name", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("longer-name"), std::string::npos);
    // Header underline present.
    EXPECT_NE(s.find("---"), std::string::npos);
    // All lines equal width for the header block.
    const auto first_nl = s.find('\n');
    EXPECT_GT(first_nl, 10u);
}

TEST(Table, ShortRowsArePadded)
{
    Table t({"a", "b", "c"});
    t.add_row({"x"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find('x'), std::string::npos);
}

TEST(Fmt, FormatsPrecision)
{
    EXPECT_EQ(fmt(1.23456), "1.23");
    EXPECT_EQ(fmt(1.23456, 1), "1.2");
    EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Geomean, ComputesGeometricMean)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, 2.0, 2.0}), 2.0);
    EXPECT_EQ(geomean({}), 0.0);
}
