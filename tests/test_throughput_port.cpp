#include <gtest/gtest.h>

#include "sim/throughput_port.hpp"

using namespace morpheus;

TEST(ThroughputPort, IdlePortGrantsImmediately)
{
    auto port = ThroughputPort::from_rate(1.0);
    EXPECT_EQ(port.acquire(100, 4), 100u);
    EXPECT_EQ(port.next_free(), 104u);
}

TEST(ThroughputPort, BackToBackRequestsQueue)
{
    auto port = ThroughputPort::from_rate(1.0);
    EXPECT_EQ(port.acquire(0, 10), 0u);
    EXPECT_EQ(port.acquire(0, 10), 10u);
    EXPECT_EQ(port.acquire(5, 10), 20u);
    EXPECT_EQ(port.next_free(), 30u);
}

TEST(ThroughputPort, FractionalRatesAccumulate)
{
    // 4 units per cycle: 16 units should occupy exactly 4 cycles.
    auto port = ThroughputPort::from_rate(4.0);
    port.acquire(0, 16);
    EXPECT_EQ(port.next_free(), 4u);
    port.acquire(0, 1);
    EXPECT_EQ(port.next_free(), 4u);  // quarter cycle accumulates
    port.acquire(0, 3);
    EXPECT_EQ(port.next_free(), 5u);
}

TEST(ThroughputPort, TracksServedUnitsAndBusyCycles)
{
    auto port = ThroughputPort::from_rate(2.0);
    port.acquire(0, 8);
    port.acquire(100, 8);
    EXPECT_EQ(port.served_units(), 16u);
    EXPECT_EQ(port.busy_cycles(), 8u);  // 16 units at 2/cycle
}

TEST(ThroughputPort, ResetClearsState)
{
    auto port = ThroughputPort::from_rate(1.0);
    port.acquire(0, 50);
    port.reset();
    EXPECT_EQ(port.next_free(), 0u);
    EXPECT_EQ(port.served_units(), 0u);
}

TEST(PortPool, PicksIdlePortFirst)
{
    PortPool pool(2, 1.0);
    EXPECT_EQ(pool.acquire(0, 10), 0u);  // port A busy till 10
    EXPECT_EQ(pool.acquire(0, 10), 0u);  // port B idle
    EXPECT_EQ(pool.acquire(0, 10), 10u); // both busy; earliest free
}

TEST(PortPool, KeyedAcquireIsDeterministicPerKey)
{
    PortPool pool(4, 1.0);
    EXPECT_EQ(pool.acquire_keyed(0, 42, 5), 0u);
    EXPECT_EQ(pool.acquire_keyed(0, 42, 5), 5u);   // same bank: serialized
    EXPECT_EQ(pool.acquire_keyed(0, 43, 5), 0u);   // different bank: parallel
}

TEST(PortPool, AggregatesStats)
{
    PortPool pool(2, 1.0);
    pool.acquire(0, 3);
    pool.acquire(0, 4);
    EXPECT_EQ(pool.served_units(), 7u);
    EXPECT_EQ(pool.busy_cycles(), 7u);
}
