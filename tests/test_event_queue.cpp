#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

using namespace morpheus;

TEST(EventQueue, StartsEmptyAtTimeZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTimeEventsRunFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, SchedulingInThePastClampsToNow)
{
    EventQueue eq;
    Cycle seen = 0;
    eq.schedule(100, [&] {
        eq.schedule(50, [&] { seen = eq.now(); });  // in the past
    });
    eq.run();
    EXPECT_EQ(seen, 100u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 10)
            eq.schedule_in(7, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(eq.now(), 63u);
}

TEST(EventQueue, RunUntilStopsAtBoundaryAndKeepsRemainder)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    eq.run_until(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.pending(), 1u);
    // Time does not jump past the last executed event when draining early.
    eq.run_until(1000);
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, ExecutedCounterCounts)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(static_cast<Cycle>(i), [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 5u);
}
