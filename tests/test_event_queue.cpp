#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <numeric>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"

using namespace morpheus;

namespace {

/** Deterministic 64-bit generator (SplitMix64) for the randomized oracles. */
struct TestRng
{
    std::uint64_t state;
    explicit TestRng(std::uint64_t seed) : state(seed) {}
    std::uint64_t
    next()
    {
        state += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }
    std::uint64_t next_below(std::uint64_t n) { return next() % n; }
};

} // namespace

TEST(EventQueue, StartsEmptyAtTimeZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTimeEventsRunFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, SchedulingInThePastClampsToNow)
{
    EventQueue eq;
    Cycle seen = 0;
    eq.schedule(100, [&] {
        eq.schedule(50, [&] { seen = eq.now(); });  // in the past
    });
    eq.run();
    EXPECT_EQ(seen, 100u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 10)
            eq.schedule_in(7, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(eq.now(), 63u);
}

TEST(EventQueue, RunUntilStopsAtBoundaryAndKeepsRemainder)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    eq.run_until(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.pending(), 1u);
    // Time does not jump past the last executed event when draining early.
    eq.run_until(1000);
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, ExecutedCounterCounts)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(static_cast<Cycle>(i), [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 5u);
}

// ---------------------------------------------------------------------------
// Ordering oracle: randomized schedules compared against a reference model.
// The contract is exactly "std::stable_sort by time": equal-time events run
// in schedule order.

TEST(EventQueueOracle, RandomScheduleThenDrainMatchesStableSort)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        TestRng rng(seed * 0x1234567ULL);
        EventQueue eq;
        std::vector<std::pair<Cycle, int>> model; // (when, id) in schedule order
        std::vector<int> order;
        const int n = 2000;
        for (int id = 0; id < n; ++id) {
            // Spread times across ~3 ring windows so both the near-future
            // ring and the far-future spill heap see traffic.
            const Cycle when = rng.next_below(3 * EventQueue::kRingCycles);
            model.emplace_back(when, id);
            eq.schedule(when, [&order, id] { order.push_back(id); });
        }
        eq.run();

        std::stable_sort(model.begin(), model.end(),
                         [](const auto &a, const auto &b) { return a.first < b.first; });
        ASSERT_EQ(order.size(), model.size());
        for (std::size_t i = 0; i < model.size(); ++i)
            EXPECT_EQ(order[i], model[i].second) << "position " << i << " seed " << seed;
    }
}

TEST(EventQueueOracle, RandomInterleavedScheduleAndPopMatchesModel)
{
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        TestRng rng(seed * 0xabcdefULL + 99);
        EventQueue eq;
        // Reference model: pending (when, id) in schedule order; a pop takes
        // the earliest-time, earliest-scheduled entry.
        std::vector<std::pair<Cycle, int>> pending;
        std::vector<int> order;
        std::vector<int> expected;
        int next_id = 0;
        for (int op = 0; op < 4000; ++op) {
            const bool do_pop = !pending.empty() && rng.next_below(100) < 40;
            if (do_pop) {
                auto best = pending.begin();
                for (auto it = pending.begin(); it != pending.end(); ++it) {
                    if (it->first < best->first)
                        best = it;
                }
                expected.push_back(best->second);
                pending.erase(best);
                ASSERT_TRUE(eq.step());
            } else {
                const int id = next_id++;
                // Mix short-horizon, boundary, and far-future delays; the
                // model clamps past times to "now" just like the queue.
                const std::uint64_t pick = rng.next_below(100);
                Cycle when;
                if (pick < 70)
                    when = eq.now() + rng.next_below(64);
                else if (pick < 85)
                    when = eq.now() + EventQueue::kRingCycles - 2 + rng.next_below(4);
                else
                    when = eq.now() + rng.next_below(4 * EventQueue::kRingCycles);
                pending.emplace_back(std::max(when, eq.now()), id);
                eq.schedule(when, [&order, id] { order.push_back(id); });
            }
            ASSERT_EQ(eq.pending(), pending.size());
        }
        eq.run();
        // Drain the model in the same earliest-(when, seq) order.
        std::stable_sort(pending.begin(), pending.end(),
                         [](const auto &a, const auto &b) { return a.first < b.first; });
        for (const auto &p : pending)
            expected.push_back(p.second);
        EXPECT_EQ(order, expected) << "seed " << seed;
    }
}

// ---------------------------------------------------------------------------
// Far-future spill boundaries.

TEST(EventQueueSpill, EventsStraddlingTheRingBoundaryRunInTimeOrder)
{
    EventQueue eq;
    std::vector<Cycle> times;
    const Cycle r = EventQueue::kRingCycles;
    // One event per interesting offset, scheduled in scrambled order.
    const std::array<Cycle, 7> offsets = {r + 1, 0, r - 1, 2 * r + 3, r, 1, 5 * r};
    for (Cycle o : offsets)
        eq.schedule(o, [&times, &eq] { times.push_back(eq.now()); });
    eq.run();
    const std::vector<Cycle> expect = {0, 1, r - 1, r, r + 1, 2 * r + 3, 5 * r};
    EXPECT_EQ(times, expect);
}

TEST(EventQueueSpill, SameCycleFifoHoldsAcrossSpillRefill)
{
    EventQueue eq;
    const Cycle far = 3 * EventQueue::kRingCycles + 17;
    std::vector<int> order;
    // "a" enters via the spill heap (far future at schedule time)...
    eq.schedule(far, [&order] { order.push_back(0); });
    // ...then the clock advances into range, pulling "a" into its bucket...
    eq.schedule(far - 10, [&order, &eq, far] {
        order.push_back(1);
        // ...and "b", scheduled later for the same cycle, must run after it.
        eq.schedule(far, [&order] { order.push_back(2); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 0, 2}));
}

TEST(EventQueueSpill, RepeatedWindowJumpsDrainEverything)
{
    EventQueue eq;
    std::uint64_t fired = 0;
    // Sparse events many windows apart force repeated empty-ring jumps
    // through the spill heap.
    for (Cycle i = 0; i < 64; ++i)
        eq.schedule(i * 7 * EventQueue::kRingCycles, [&fired] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 64u);
    EXPECT_EQ(eq.now(), 63 * 7 * EventQueue::kRingCycles);
    EXPECT_TRUE(eq.empty());
}

// ---------------------------------------------------------------------------
// Reentrancy: schedule() from inside a running callback.

TEST(EventQueueReentrancy, CallbacksMaySpawnBurstsThatGrowTheSlab)
{
    EventQueue eq;
    std::uint64_t fired = 0;
    // Each primary event spawns a burst bigger than one slab chunk, so the
    // queue must grow its node storage while a callback is mid-flight.
    for (int i = 0; i < 4; ++i) {
        eq.schedule(static_cast<Cycle>(i), [&eq, &fired] {
            for (int j = 0; j < 600; ++j)
                eq.schedule_in(static_cast<Cycle>(j % 13), [&fired] { ++fired; });
        });
    }
    eq.run();
    EXPECT_EQ(fired, 4u * 600u);
}

TEST(EventQueueReentrancy, SelfReschedulingEventKeepsItsCaptureIntact)
{
    // Regression for the old priority_queue implementation, whose step()
    // moved the callback out of top() via const_cast — UB-adjacent, and a
    // use-after-free risk for a callback whose own scheduling invalidates
    // heap storage mid-flight. The calendar queue's nodes are stable slab
    // storage; under ASan this test verifies a self-rescheduling callback's
    // capture survives arbitrarily many hops, interleaved with same-cycle
    // neighbours.
    EventQueue eq;
    std::vector<std::uint64_t> payload(32);
    std::iota(payload.begin(), payload.end(), 1);
    const std::uint64_t want =
        std::accumulate(payload.begin(), payload.end(), std::uint64_t{0});

    std::uint64_t checks = 0;
    int hops = 0;
    std::function<void()> self = [&, payload] {
        // Touch every captured byte (ASan would flag a stale node).
        std::uint64_t sum = 0;
        for (std::uint64_t v : payload)
            sum += v;
        EXPECT_EQ(sum, want);
        ++checks;
        if (++hops < 200) {
            // Same-cycle neighbours land in the same bucket while the
            // self-reschedule appends behind them.
            eq.schedule_in(0, [&checks] { ++checks; });
            eq.schedule_in(hops % 3, self);
        }
    };
    eq.schedule(0, self);
    eq.run();
    EXPECT_EQ(checks, 200u + 199u);
}

TEST(EventQueueReentrancy, PastSchedulesFromCallbacksRunThisCycleInFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(100, [&] {
        order.push_back(0);
        eq.schedule(40, [&order] { order.push_back(2); }); // clamped to 100
    });
    eq.schedule(100, [&order] { order.push_back(1); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(eq.now(), 100u);
}

// ---------------------------------------------------------------------------
// EventFn storage.

TEST(EventQueueCaptures, NearLimitCapturesWork)
{
    EventQueue eq;
    std::array<std::uint8_t, EventFn::kInlineBytes - 8> blob{};
    for (std::size_t i = 0; i < blob.size(); ++i)
        blob[i] = static_cast<std::uint8_t>(i * 7 + 1);
    std::uint32_t sum = 0;
    eq.schedule(3, [blob, &sum] {
        for (std::uint8_t b : blob)
            sum += b;
    });
    eq.run();
    std::uint32_t want = 0;
    for (std::size_t i = 0; i < blob.size(); ++i)
        want += static_cast<std::uint8_t>(i * 7 + 1);
    EXPECT_EQ(sum, want);
}
