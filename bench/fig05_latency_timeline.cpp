/**
 * @file
 * Reproduces Figure 5: unloaded latency timelines for LLC hits, misses,
 * and predicted misses on a Morpheus-enabled GPU.
 *
 * Paper reference points (ns): conventional hit ~160, conventional miss
 * ~608, extended hit ~325 (>= 300, Fig. 11b), extended (mispredicted)
 * miss ~773, correctly predicted miss ~608 (as fast as a conventional
 * miss).
 */
#include <cstdio>

#include "gpu/gpu_system.hpp"
#include "harness/table.hpp"
#include "morpheus/morpheus_controller.hpp"
#include "workloads/synthetic_workload.hpp"

using namespace morpheus;

namespace {

/** Sends one request through the idle system and returns its latency. */
Cycle
probe(GpuSystem &sys, LineAddr line, AccessType type)
{
    Cycle done = 0;
    std::uint64_t version = type == AccessType::kWrite ? sys.store().next_version() : 0;
    const Cycle start = sys.event_queue().now();
    MemRequest req{line, type, 0, version};
    sys.to_llc(start, req, [&done](Cycle when, std::uint64_t) { done = when; });
    sys.event_queue().run();
    return done - start;
}

/** Lets in-flight insertions settle. */
void
settle(GpuSystem &sys)
{
    sys.event_queue().run();
}

} // namespace

int
main()
{
    WorkloadParams params;
    params.name = "fig05-probe";
    params.total_mem_instrs = 0;  // probes only; no application traffic

    SystemSetup setup;
    setup.compute_sms = 42;
    setup.morpheus.enabled = true;
    setup.morpheus.cache_sms = 26;
    setup.morpheus.prediction = PredictionMode::kBloom;

    SyntheticWorkload workload(params);
    GpuSystem sys(setup, workload);
    ExtendedLlc *ext = sys.extended_llc();

    // Find representative lines in each address partition.
    LineAddr conv_line = 0;
    while (ext->is_extended(conv_line))
        ++conv_line;
    LineAddr ext_line = 0;
    while (!ext->is_extended(ext_line))
        ++ext_line;
    LineAddr ext_line2 = ext_line + 1;
    while (!ext->is_extended(ext_line2))
        ++ext_line2;

    // Conventional LLC: first touch misses, second hits.
    const Cycle conv_miss = probe(sys, conv_line, AccessType::kRead);
    const Cycle conv_hit = probe(sys, conv_line, AccessType::kRead);

    // Extended LLC: the first touch is a correctly predicted miss (served
    // from DRAM at conventional-miss speed, inserted off the critical
    // path); once resident, the second touch is an extended hit.
    const Cycle pred_miss = probe(sys, ext_line, AccessType::kRead);
    settle(sys);
    const Cycle ext_hit = probe(sys, ext_line, AccessType::kRead);

    // A mispredicted extended miss: force a forward of an absent line by
    // disabling prediction on a fresh system.
    SystemSetup no_pred = setup;
    no_pred.morpheus.prediction = PredictionMode::kNone;
    SyntheticWorkload workload2(params);
    GpuSystem sys2(no_pred, workload2);
    LineAddr ext_line3 = 0;
    while (!sys2.extended_llc()->is_extended(ext_line3))
        ++ext_line3;
    const Cycle ext_miss = probe(sys2, ext_line3, AccessType::kRead);

    Table table({"event", "paper (ns)", "measured (cycles ~ ns)"});
    table.add_row({"conventional LLC hit", "~160", std::to_string(conv_hit)});
    table.add_row({"conventional LLC miss", "~608", std::to_string(conv_miss)});
    table.add_row({"extended LLC hit", ">=300 (~325)", std::to_string(ext_hit)});
    table.add_row({"extended LLC miss (mispredicted)", "~773", std::to_string(ext_miss)});
    table.add_row({"extended LLC predicted miss", "~608", std::to_string(pred_miss)});
    table.print();

    std::printf("\nextended-miss penalty over conventional miss: %+lld cycles "
                "(paper: +165 ns)\n",
                static_cast<long long>(ext_miss) - static_cast<long long>(conv_miss));
    std::printf("predicted-miss savings vs mispredicted miss: %lld cycles\n",
                static_cast<long long>(ext_miss) - static_cast<long long>(pred_miss));
    return 0;
}
