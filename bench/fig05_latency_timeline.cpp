/**
 * @file
 * Driver stub for the "fig05_latency_timeline" scenario (see src/scenarios/). Runs the same
 * sweep as `morpheus_cli --scenario fig05_latency_timeline`; accepts --jobs N,
 * --format text|csv|json, and --output FILE.
 */
#include "harness/scenario.hpp"

int
main(int argc, char **argv)
{
    return morpheus::scenario_main("fig05_latency_timeline", argc, argv);
}
