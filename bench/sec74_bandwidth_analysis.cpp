/**
 * @file
 * Driver stub for the "sec74_bandwidth_analysis" scenario (see src/scenarios/). Runs the same
 * sweep as `morpheus_cli --scenario sec74_bandwidth_analysis`; accepts --jobs N,
 * --format text|csv|json, and --output FILE.
 */
#include "harness/scenario.hpp"

int
main(int argc, char **argv)
{
    return morpheus::scenario_main("sec74_bandwidth_analysis", argc, argv);
}
