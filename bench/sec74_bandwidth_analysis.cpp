/**
 * @file
 * Reproduces the §7.4 on-chip / off-chip bandwidth analysis:
 *  (1) LLC throughput for BL, IBL, Morpheus-ALL and larger-LLC;
 *  (2) interconnect load / throughput / latency for BL vs Morpheus-ALL;
 *  (3) off-chip bandwidth utilization and LLC MPKI for IBL vs
 *      Morpheus-ALL.
 *
 * Paper anchors: Morpheus-ALL raises LLC throughput by ~75% over BL and
 * ~68% over IBL (larger-LLC alone gives ~42%); NoC load roughly doubles
 * (+97%) with ~7% longer average latency but no saturation; off-chip
 * bandwidth utilization drops ~17% and MPKI ~47% vs IBL.
 */
#include <cstdio>
#include <vector>

#include "harness/runner.hpp"
#include "harness/table.hpp"

using namespace morpheus;

int
main()
{
    Table llc({"app", "BL", "IBL", "Morpheus-ALL", "larger-LLC", "(LLC accesses/kcycle, norm. BL)"});
    Table noc({"app", "NoC load x", "NoC latency x", "(Morpheus-ALL vs BL)"});
    Table offchip({"app", "DRAM util IBL", "DRAM util M-ALL", "MPKI IBL", "MPKI M-ALL"});

    std::vector<double> llc_gain_bl;
    std::vector<double> llc_gain_ibl;
    std::vector<double> llc_gain_larger;
    std::vector<double> noc_load;
    std::vector<double> noc_lat;
    std::vector<double> bw_ratio;
    std::vector<double> mpki_ratio;

    for (const auto &app : app_catalog()) {
        if (!app.params.memory_bound)
            continue;

        const RunResult bl = run_system(SystemKind::kBL, app);
        const RunResult ibl = run_system(SystemKind::kIBL, app);
        const RunResult all = run_system(SystemKind::kMorpheusAll, app);
        const RunResult larger = run_system(SystemKind::kLargerLlc, app);

        llc.add_row({app.params.name, "1.00", fmt(ibl.llc_throughput / bl.llc_throughput),
                     fmt(all.llc_throughput / bl.llc_throughput),
                     fmt(larger.llc_throughput / bl.llc_throughput), ""});
        llc_gain_bl.push_back(all.llc_throughput / bl.llc_throughput);
        llc_gain_ibl.push_back(all.llc_throughput / ibl.llc_throughput);
        llc_gain_larger.push_back(larger.llc_throughput / bl.llc_throughput);

        noc.add_row({app.params.name, fmt(all.noc_injection_rate / bl.noc_injection_rate),
                     fmt(all.noc_avg_latency / bl.noc_avg_latency), ""});
        noc_load.push_back(all.noc_injection_rate / bl.noc_injection_rate);
        noc_lat.push_back(all.noc_avg_latency / bl.noc_avg_latency);

        offchip.add_row({app.params.name, fmt(100.0 * ibl.dram_utilization, 1) + "%",
                         fmt(100.0 * all.dram_utilization, 1) + "%", fmt(ibl.mpki, 1),
                         fmt(all.mpki, 1)});
        bw_ratio.push_back(all.dram_utilization / ibl.dram_utilization);
        mpki_ratio.push_back(all.mpki / ibl.mpki);
    }

    std::printf("== LLC throughput (normalized to BL; paper: M-ALL ~1.75x, larger-LLC ~1.42x) ==\n");
    llc.print();
    std::printf("\ngmean: M-ALL/BL=%.2f  M-ALL/IBL=%.2f  larger-LLC/BL=%.2f\n",
                geomean(llc_gain_bl), geomean(llc_gain_ibl), geomean(llc_gain_larger));

    std::printf("\n== Interconnect (paper: load ~1.97x, latency ~1.07x, no saturation) ==\n");
    noc.print();
    std::printf("\ngmean: load=%.2fx latency=%.2fx\n", geomean(noc_load), geomean(noc_lat));

    std::printf("\n== Off-chip bandwidth & MPKI (paper: M-ALL vs IBL: BW util -17%%, MPKI -47%%) ==\n");
    offchip.print();
    std::printf("\ngmean ratios (M-ALL/IBL): DRAM util=%.2f  MPKI=%.2f\n", geomean(bw_ratio),
                geomean(mpki_ratio));
    return 0;
}
