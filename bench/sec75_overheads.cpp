/**
 * @file
 * Driver stub for the "sec75_overheads" scenario (see src/scenarios/). Runs the same
 * sweep as `morpheus_cli --scenario sec75_overheads`; accepts --jobs N,
 * --format text|csv|json, and --output FILE.
 */
#include "harness/scenario.hpp"

int
main(int argc, char **argv)
{
    return morpheus::scenario_main("sec75_overheads", argc, argv);
}
