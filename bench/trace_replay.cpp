/**
 * @file
 * Driver stub for the "trace_replay" scenario (see src/scenarios/). Runs the
 * same replay as `morpheus_cli --scenario trace_replay`; accepts --jobs N,
 * --format text|csv|json, --trace FILE (a specific .mtrc trace; default is
 * every trace in bench/traces/), and --output FILE.
 */
#include "harness/scenario.hpp"

int
main(int argc, char **argv)
{
    return morpheus::scenario_main("trace_replay", argc, argv);
}
