/**
 * @file
 * Driver stub for the "query_depth" scenario (see src/scenarios/). Runs the same
 * sweep as `morpheus_cli --scenario query_depth`; accepts --jobs N,
 * --format text|csv|json, and --output FILE.
 */
#include "harness/scenario.hpp"

int
main(int argc, char **argv)
{
    return morpheus::scenario_main("query_depth", argc, argv);
}
