/**
 * @file
 * Driver stub for the "fig12_performance" scenario (see src/scenarios/). Runs the same
 * sweep as `morpheus_cli --scenario fig12_performance`; accepts --jobs N,
 * --format text|csv|json, and --output FILE.
 */
#include "harness/scenario.hpp"

int
main(int argc, char **argv)
{
    return morpheus::scenario_main("fig12_performance", argc, argv);
}
