/**
 * @file
 * Google-benchmark micro suite for the hot components of the simulator
 * and of Morpheus itself: Bloom filters, the dual-filter predictor, BDI
 * compression, the tag-lookup / Indirect-MOV warp emulation, the
 * set-associative cache, the extended-LLC set, and the event queue.
 */
#include <benchmark/benchmark.h>

#include "cache/bdi.hpp"
#include "cache/bloom_filter.hpp"
#include "cache/set_assoc_cache.hpp"
#include "morpheus/extended_llc_kernel.hpp"
#include "morpheus/hit_miss_predictor.hpp"
#include "morpheus/indirect_mov.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "workloads/block_data.hpp"

using namespace morpheus;

namespace {

void
BM_BloomInsert(benchmark::State &state)
{
    BloomFilter bf(static_cast<std::uint32_t>(state.range(0)));
    std::uint64_t key = 1;
    for (auto _ : state) {
        bf.insert(key++);
        if ((key & 1023) == 0)
            bf.clear();
    }
}
BENCHMARK(BM_BloomInsert)->Arg(256)->Arg(2048);

void
BM_BloomQuery(benchmark::State &state)
{
    BloomFilter bf(static_cast<std::uint32_t>(state.range(0)));
    for (std::uint64_t k = 0; k < 32; ++k)
        bf.insert(k * 977);
    std::uint64_t key = 1;
    bool sink = false;
    for (auto _ : state)
        benchmark::DoNotOptimize(sink ^= bf.maybe_contains(key++));
}
BENCHMARK(BM_BloomQuery)->Arg(256)->Arg(2048);

void
BM_PredictorAccess(benchmark::State &state)
{
    DualBloomPredictor pred(32);
    Rng rng(7);
    for (auto _ : state) {
        const LineAddr line = rng.next_below(4096);
        benchmark::DoNotOptimize(pred.predict_hit(line));
        pred.on_access(line);
    }
}
BENCHMARK(BM_PredictorAccess);

void
BM_BdiCompress(benchmark::State &state)
{
    const BlockDataProfile profile{0.3, 0.4, 42};
    LineAddr line = 0;
    for (auto _ : state) {
        const Block block = synthesize_block(profile, line++);
        benchmark::DoNotOptimize(bdi_compress(block));
    }
}
BENCHMARK(BM_BdiCompress);

void
BM_BdiRoundTrip(benchmark::State &state)
{
    const BlockDataProfile profile{0.5, 0.4, 43};
    std::vector<std::uint8_t> encoded;
    LineAddr line = 0;
    for (auto _ : state) {
        const Block block = synthesize_block(profile, line++);
        const BdiResult r = bdi_encode(block, encoded);
        benchmark::DoNotOptimize(bdi_decode(r.encoding, encoded));
    }
}
BENCHMARK(BM_BdiRoundTrip);

void
BM_WarpTagLookup(benchmark::State &state)
{
    WarpSetEmulator warp;
    Block data{};
    for (std::uint64_t t = 0; t < 32; ++t)
        warp.insert(t, data, false);
    std::uint64_t tag = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(warp.tag_lookup(tag++ % 48));
}
BENCHMARK(BM_WarpTagLookup);

void
BM_IndirectMovRead(benchmark::State &state)
{
    WarpSetEmulator warp;
    Block data{};
    for (std::uint64_t t = 0; t < 32; ++t)
        warp.insert(t, data, false);
    std::uint32_t idx = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(warp.indirect_mov_read(idx++));
}
BENCHMARK(BM_IndirectMovRead);

void
BM_CacheAccess(benchmark::State &state)
{
    SetAssocCache cache(512, 16, ReplacementKind::kLru, true);
    Rng rng(11);
    for (auto _ : state) {
        const LineAddr line = rng.next_below(16384);
        const auto r = cache.read(line);
        if (!r.hit)
            cache.fill(line, 1, false);
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_ExtSetInsertLookup(benchmark::State &state)
{
    ExtSet set(48 * 128, state.range(0) != 0, 10'000);
    std::vector<ExtSet::Evicted> evicted;
    Rng rng(13);
    Cycle now = 0;
    for (auto _ : state) {
        const LineAddr line = rng.next_below(256);
        std::uint64_t version;
        CompLevel level;
        if (!set.touch_read(++now, line, version, level)) {
            evicted.clear();
            set.insert(now, line, 1, false, CompLevel::kLow, evicted);
        }
    }
}
BENCHMARK(BM_ExtSetInsertLookup)->Arg(0)->Arg(1);

void
BM_EventQueue(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t counter = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            eq.schedule_in(static_cast<Cycle>(i * 7 % 23), [&counter] { ++counter; });
        eq.run();
    }
    benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_EventQueue);

void
BM_ZipfSample(benchmark::State &state)
{
    ZipfSampler zipf(100'000, 0.8);
    Rng rng(17);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.sample(rng));
}
BENCHMARK(BM_ZipfSample);

} // namespace

BENCHMARK_MAIN();
