/**
 * @file
 * Driver stub for the "micro_components" scenario (see src/scenarios/). Runs the same
 * sweep as `morpheus_cli --scenario micro_components`; accepts --jobs N,
 * --format text|csv|json, and --output FILE.
 */
#include "harness/scenario.hpp"

int
main(int argc, char **argv)
{
    return morpheus::scenario_main("micro_components", argc, argv);
}
