/**
 * @file
 * Driver stub for the "micro_components" scenario (see src/scenarios/). Runs the same
 * sweep as `morpheus_cli --scenario micro_components`; accepts --jobs N and
 * --format text|csv|json.
 */
#include "harness/scenario.hpp"

int
main(int argc, char **argv)
{
    return morpheus::scenario_main("micro_components", argc, argv);
}
