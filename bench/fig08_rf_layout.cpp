/**
 * @file
 * Driver stub for the "fig08_rf_layout" scenario (see src/scenarios/). Runs
 * the same sweep as `morpheus_cli --scenario fig08_rf_layout`; accepts
 * --jobs N, --format text|csv|json, and --output FILE.
 */
#include "harness/scenario.hpp"

int
main(int argc, char **argv)
{
    return morpheus::scenario_main("fig08_rf_layout", argc, argv);
}
