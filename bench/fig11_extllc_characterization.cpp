/**
 * @file
 * Driver stub for the "fig11_extllc_characterization" scenario (see src/scenarios/). Runs the same
 * sweep as `morpheus_cli --scenario fig11_extllc_characterization`; accepts --jobs N,
 * --format text|csv|json, and --output FILE.
 */
#include "harness/scenario.hpp"

int
main(int argc, char **argv)
{
    return morpheus::scenario_main("fig11_extllc_characterization", argc, argv);
}
