/**
 * @file
 * Driver stub for the "fig02_llc_sensitivity" scenario (see src/scenarios/). Runs the same
 * sweep as `morpheus_cli --scenario fig02_llc_sensitivity`; accepts --jobs N,
 * --format text|csv|json, and --output FILE.
 */
#include "harness/scenario.hpp"

int
main(int argc, char **argv)
{
    return morpheus::scenario_main("fig02_llc_sensitivity", argc, argv);
}
