/**
 * @file
 * Reproduces Figure 2: best-achievable normalized IPC of the 14
 * memory-bound applications with 1x / 2x / 4x conventional LLC capacity.
 *
 * The paper varies the SM count per configuration and reports the
 * maximum; we sweep the same SM grid. Paper anchors: every app improves
 * with a larger LLC; 4x reaches up to 2.34x (kmeans) and 1.57x gmean.
 */
#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness/runner.hpp"
#include "harness/table.hpp"

using namespace morpheus;

namespace {

/** Best IPC over the SM grid for a given LLC size. */
double
best_ipc(const AppSpec &app, std::uint64_t llc_bytes)
{
    const std::vector<std::uint32_t> sm_counts = {10, 20, 30, 40, 50, 60, 68};
    double best = 0;
    for (auto n : sm_counts)
        best = std::max(best, run_with_sms(app, n, llc_bytes).ipc);
    return best;
}

} // namespace

int
main()
{
    const std::uint64_t base_llc = GpuConfig{}.llc_bytes;

    Table table({"app", "1X-LLC", "2X-LLC", "4X-LLC"});
    std::vector<double> g2;
    std::vector<double> g4;

    for (const auto &app : app_catalog()) {
        if (!app.params.memory_bound)
            continue;
        const double x1 = best_ipc(app, base_llc);
        const double x2 = best_ipc(app, 2 * base_llc);
        const double x4 = best_ipc(app, 4 * base_llc);
        table.add_row({app.params.name, "1.00", fmt(x2 / x1), fmt(x4 / x1)});
        g2.push_back(x2 / x1);
        g4.push_back(x4 / x1);
    }
    table.add_row({"gmean", "1.00", fmt(geomean(g2)), fmt(geomean(g4))});
    table.print();
    std::printf("\n(paper: 4X-LLC up to 2.34x on kmeans, 1.57x gmean)\n");
    return 0;
}
