/**
 * @file
 * Driver stub for the "trace_corpus" scenario (see src/scenarios/). Runs the
 * same sweep as `morpheus_cli --scenario trace_corpus`; accepts --jobs N,
 * --format text|csv|json, --trace FILE (a specific converted .mtrc; default
 * is every trace in bench/traces/corpus/), and --output FILE.
 */
#include "harness/scenario.hpp"

int
main(int argc, char **argv)
{
    return morpheus::scenario_main("trace_corpus", argc, argv);
}
