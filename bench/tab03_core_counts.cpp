/**
 * @file
 * Driver stub for the "tab03_core_counts" scenario (see src/scenarios/). Runs the same
 * sweep as `morpheus_cli --scenario tab03_core_counts`; accepts --jobs N,
 * --format text|csv|json, and --output FILE.
 */
#include "harness/scenario.hpp"

int
main(int argc, char **argv)
{
    return morpheus::scenario_main("tab03_core_counts", argc, argv);
}
