/**
 * @file
 * Reproduces Table 3: the number of GPU cores executing application
 * threads for IBL, Morpheus-Basic, and Morpheus-ALL, found by the same
 * offline search the paper uses (sweep the compute-SM count, keep the
 * best-performing configuration).
 */
#include <cstdio>
#include <vector>

#include "harness/runner.hpp"
#include "harness/table.hpp"

using namespace morpheus;

namespace {

const std::vector<std::uint32_t> kGrid = {18, 26, 34, 50, 68};

/** Best compute-SM count for plain (non-Morpheus) execution. */
std::uint32_t
search_ibl(const AppSpec &app)
{
    std::uint32_t best_n = kGrid.back();
    double best_ipc = 0;
    for (auto n : kGrid) {
        const double ipc = run_with_sms(app, n).ipc;
        if (ipc > best_ipc * 1.02) {  // prefer more SMs on ties, as the paper does
            best_ipc = ipc;
            best_n = n;
        }
    }
    return best_n;
}

/** Best compute-SM count for a Morpheus configuration. */
std::uint32_t
search_morpheus(const AppSpec &app, bool compression, bool hw_mov)
{
    std::uint32_t best_n = kGrid.back();
    double best_ipc = 0;
    for (auto n : kGrid) {
        const SystemSetup setup =
            make_morpheus_system(app, n, compression, hw_mov, PredictionMode::kBloom);
        const double ipc = run_setup(setup, app.params).ipc;
        if (ipc > best_ipc * 1.02) {
            best_ipc = ipc;
            best_n = n;
        }
    }
    return best_n;
}

} // namespace

namespace {

/** The paper's published Table 3 (for side-by-side comparison). */
struct PaperRow
{
    const char *app;
    std::uint32_t ibl, basic, all;
};
constexpr PaperRow kPaperTable3[] = {
    {"p-bfs", 68, 32, 40},  {"cfd", 68, 42, 55},    {"dwt2d", 68, 42, 54},
    {"stencil", 68, 50, 56}, {"r-bfs", 68, 34, 37},  {"bprob", 68, 39, 41},
    {"sgem", 68, 48, 54},    {"nw", 68, 18, 26},     {"page-r", 68, 42, 46},
    {"kmeans", 24, 37, 47},  {"histo", 53, 47, 52},  {"mri-gri", 34, 36, 43},
    {"spmv", 42, 44, 47},    {"lbm", 34, 32, 36},    {"lib", 68, 68, 68},
    {"hotsp", 68, 68, 68},   {"mri-q", 68, 68, 68},
};

const PaperRow *
paper_row(const std::string &name)
{
    for (const auto &row : kPaperTable3) {
        if (name == row.app)
            return &row;
    }
    return nullptr;
}

} // namespace

int
main()
{
    Table table({"app", "IBL (paper)", "IBL (search)", "Morpheus-Basic (paper)",
                 "Morpheus-Basic (search)", "Morpheus-ALL (paper)", "Morpheus-ALL (search)",
                 "catalog (used by fig12)"});

    for (const auto &app : app_catalog()) {
        const PaperRow *paper = paper_row(app.params.name);
        const std::string used = std::to_string(app.morpheus_basic_sms) + "/" +
                                 std::to_string(app.morpheus_all_sms);
        if (!app.params.memory_bound) {
            table.add_row({app.params.name, "68", "68", "68", "68", "68", "68", used});
            continue;
        }
        const std::uint32_t ibl = search_ibl(app);
        const std::uint32_t basic = search_morpheus(app, false, false);
        const std::uint32_t all = search_morpheus(app, true, true);
        table.add_row({app.params.name, std::to_string(paper->ibl), std::to_string(ibl),
                       std::to_string(paper->basic), std::to_string(basic),
                       std::to_string(paper->all), std::to_string(all), used});
    }
    table.print();
    std::printf("\n(The \"paper\" columns are the published Table 3; the \"search\" columns "
                "re-derive the best core counts with the paper's offline sweep on this "
                "simulator; the \"catalog\" column shows the splits DESIGN.md bakes in for the "
                "Figure 12 harness. The shared trend to check: thrash-class apps prefer far "
                "fewer than 68 compute cores, and every Morpheus configuration reserves a "
                "substantial cache-mode pool.)\n");
    return 0;
}
