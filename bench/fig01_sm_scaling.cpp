/**
 * @file
 * Reproduces Figure 1: normalized IPC of all 17 applications as the
 * number of compute SMs scales from 10 to 68 on the baseline GPU.
 *
 * Expected shapes (paper §3): the 9 saturating memory-bound apps flatten
 * out; the 5 thrash-class apps (kmeans, histo, mri-gri, spmv, lbm) peak
 * and then *lose* performance; the 3 compute-bound apps keep scaling.
 */
#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness/runner.hpp"
#include "harness/table.hpp"

using namespace morpheus;

int
main()
{
    const std::vector<std::uint32_t> sm_counts = {10, 20, 30, 40, 50, 60, 68};

    std::vector<std::string> headers = {"app (norm. IPC @10 SMs)"};
    for (auto n : sm_counts)
        headers.push_back(std::to_string(n));
    headers.push_back("shape");
    Table table(headers);

    for (const auto &app : app_catalog()) {
        std::vector<double> ipc;
        for (auto n : sm_counts)
            ipc.push_back(run_with_sms(app, n).ipc);

        std::vector<std::string> row = {app.params.name};
        for (double v : ipc)
            row.push_back(fmt(v / ipc.front()));

        // Classify the measured shape for quick visual checking.
        const double peak = *std::max_element(ipc.begin(), ipc.end());
        const double last = ipc.back();
        const char *shape = "scaling";
        if (app.params.memory_bound)
            shape = last < 0.9 * peak ? "peak-then-drop" : "saturating";
        row.push_back(shape);
        table.add_row(std::move(row));
    }
    table.print();
    std::printf("\n(IPC normalized to the 10-SM configuration, as in the paper's y-axes.)\n");
    return 0;
}
