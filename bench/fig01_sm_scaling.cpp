/**
 * @file
 * Driver stub for the "fig01_sm_scaling" scenario (see src/scenarios/). Runs the same
 * sweep as `morpheus_cli --scenario fig01_sm_scaling`; accepts --jobs N,
 * --format text|csv|json, and --output FILE.
 */
#include "harness/scenario.hpp"

int
main(int argc, char **argv)
{
    return morpheus::scenario_main("fig01_sm_scaling", argc, argv);
}
