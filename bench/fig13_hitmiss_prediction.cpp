/**
 * @file
 * Driver stub for the "fig13_hitmiss_prediction" scenario (see src/scenarios/). Runs the same
 * sweep as `morpheus_cli --scenario fig13_hitmiss_prediction`; accepts --jobs N,
 * --format text|csv|json, and --output FILE.
 */
#include "harness/scenario.hpp"

int
main(int argc, char **argv)
{
    return morpheus::scenario_main("fig13_hitmiss_prediction", argc, argv);
}
