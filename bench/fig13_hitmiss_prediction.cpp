/**
 * @file
 * Reproduces Figure 13: execution time of Morpheus-Basic under three
 * hit/miss predictor designs — No-Prediction, the dual-Bloom-filter
 * design, and a perfect oracle — normalized to the baseline (BL).
 *
 * Paper anchors: No-Prediction is ~9% slower than Bloom-Filter on
 * average; Bloom-Filter is within ~1% of Perfect-Prediction.
 */
#include <cstdio>
#include <vector>

#include "harness/runner.hpp"
#include "harness/table.hpp"

using namespace morpheus;

int
main()
{
    const PredictionMode modes[] = {PredictionMode::kNone, PredictionMode::kBloom,
                                    PredictionMode::kPerfect};

    Table table({"app", "No-Prediction", "Bloom-Filter", "Perfect-Prediction", "Bloom FP rate"});
    std::vector<double> ratios[3];

    for (const auto &app : app_catalog()) {
        if (!app.params.memory_bound)
            continue;
        const RunResult base = run_system(SystemKind::kBL, app);

        std::vector<std::string> row = {app.params.name};
        double fp_rate = 0;
        for (int m = 0; m < 3; ++m) {
            const SystemSetup setup =
                make_morpheus_system(app, app.morpheus_basic_sms, false, false, modes[m]);
            const RunResult r = run_setup(setup, app.params);
            const double norm = static_cast<double>(r.cycles) / static_cast<double>(base.cycles);
            ratios[m].push_back(norm);
            row.push_back(fmt(norm));
            if (modes[m] == PredictionMode::kBloom && r.ext_predicted_hits > 0) {
                fp_rate = static_cast<double>(r.ext_false_positives) /
                          static_cast<double>(r.ext_predicted_hits);
            }
        }
        row.push_back(fmt(100.0 * fp_rate, 1) + "%");
        table.add_row(std::move(row));
    }

    table.add_row({"gmean", fmt(geomean(ratios[0])), fmt(geomean(ratios[1])),
                   fmt(geomean(ratios[2])), ""});
    table.print();
    std::printf("\npaper anchors: No-Prediction ~9%% slower than Bloom-Filter; "
                "Bloom-Filter within ~1%% of Perfect-Prediction\n");
    return 0;
}
