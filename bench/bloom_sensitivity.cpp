/**
 * @file
 * Driver stub for the "bloom_sensitivity" scenario (see src/scenarios/). Runs the
 * same sweep as `morpheus_cli --scenario bloom_sensitivity`; accepts --jobs N,
 * --format text|csv|json, and --output FILE.
 */
#include "harness/scenario.hpp"

int
main(int argc, char **argv)
{
    return morpheus::scenario_main("bloom_sensitivity", argc, argv);
}
